//! The declarative `Scenario` API: one serializable description of a
//! workload that every consumer — engine, saturation sweep, failure
//! runner, bench registry, CLI — constructs its [`FlowSource`] from.
//!
//! A [`ScenarioSpec`] names the switch size, the horizon, the arrival
//! process (synthetic Poisson or an on-disk [`ArrivalTrace`]), an
//! optional [`FailurePlan`], and the RNG seed. From a spec you can:
//!
//! * [`ScenarioSpec::source`] — open the streaming arrival source;
//! * [`run_scenario`] — execute a policy over it through the event-driven
//!   engine in `O(peak queue)` memory (horizons in the millions are fine);
//! * [`ScenarioSpec::instance`] — materialize the batch [`Instance`] for
//!   the legacy paths and differential tests;
//! * [`ScenarioSpec::dump_trace`] — freeze the workload into an arrival
//!   trace for exact replay anywhere.
//!
//! The JSON form (see [`ScenarioSpec::to_json`]) keeps scenarios
//! versionable and shareable:
//!
//! ```json
//! {
//!   "ports": 150,
//!   "horizon": 1000,
//!   "arrivals": {"poisson": {"rate": 600.0}},
//!   "failures": {"outages": [{"side": "Input", "port": 0, "from": 10, "to": 40}]},
//!   "seed": 42
//! }
//! ```

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use fss_core::prelude::*;
use fss_engine::{EngineMode, FlowSource, PoissonSource, StreamStats};
use fss_online::{FifoGreedy, MaxCard, MaxWeight, MinRTime};
use serde::{Content, DeError, Deserialize, Serialize};

use crate::arrival_trace::{ArrivalTrace, TraceSource};
use crate::experiment::PolicyKind;

/// Errors raised while loading, validating, or running a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// Reading or writing a file failed.
    Io {
        /// The offending path.
        path: String,
        /// The OS error.
        msg: String,
    },
    /// A trace or spec file failed to parse (1-based line; 0 = whole file).
    Parse {
        /// Line the error was detected on.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A trace arrival references a port outside the header's range.
    PortOutOfRange {
        /// Line the arrival is on.
        line: usize,
        /// The out-of-range port.
        port: u32,
        /// Ports declared by the header.
        ports: usize,
    },
    /// Trace releases must be nondecreasing (the [`FlowSource`] contract).
    UnsortedRelease {
        /// Line the violation is on.
        line: usize,
        /// The previous release round.
        prev: u64,
        /// The offending (smaller) release round.
        next: u64,
    },
    /// The spec itself is invalid (zero ports, bad rate, ...).
    BadSpec(String),
    /// A bounded workload is required but the spec is endless
    /// (Poisson with no horizon).
    Unbounded,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, msg } => write!(f, "{path}: {msg}"),
            ScenarioError::Parse { line: 0, msg } => write!(f, "parse error: {msg}"),
            ScenarioError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            ScenarioError::PortOutOfRange { line, port, ports } => {
                write!(
                    f,
                    "line {line}: port {port} out of range (trace declares {ports} ports)"
                )
            }
            ScenarioError::UnsortedRelease { line, prev, next } => write!(
                f,
                "line {line}: release {next} after {prev} (traces must be sorted by release)"
            ),
            ScenarioError::BadSpec(msg) => write!(f, "bad scenario: {msg}"),
            ScenarioError::Unbounded => {
                write!(f, "scenario is unbounded (poisson arrivals need a horizon)")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<fss_trace::TraceFileError> for ScenarioError {
    /// The streaming reader's errors map variant-for-variant onto the
    /// trace subset of [`ScenarioError`], so a file rejected by the
    /// streaming path carries the same diagnosis as the in-memory
    /// loader.
    fn from(e: fss_trace::TraceFileError) -> ScenarioError {
        use fss_trace::TraceFileError as E;
        match e {
            E::Io { path, msg } => ScenarioError::Io { path, msg },
            E::Parse { line, msg } => ScenarioError::Parse { line, msg },
            E::PortOutOfRange { line, port, ports } => {
                ScenarioError::PortOutOfRange { line, port, ports }
            }
            E::UnsortedRelease { line, prev, next } => {
                ScenarioError::UnsortedRelease { line, prev, next }
            }
        }
    }
}

/// The arrival process of a scenario.
///
/// With real serde this would be a `#[derive(Serialize, Deserialize)]`
/// externally-tagged enum; the in-tree shim's derive only covers unit
/// enums, so the (identical) tagged representation is implemented by
/// hand below.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// `Poisson(rate)` unit flows per round on uniformly random port
    /// pairs (the paper's §5.2.1 workload).
    Poisson {
        /// Mean arrivals per round (`M` in the paper).
        rate: f64,
    },
    /// Replay an on-disk arrival trace (see [`ArrivalTrace`]).
    Trace {
        /// Path to the JSONL trace file.
        path: String,
        /// Replay through the chunk-buffered streaming reader
        /// (`fss_trace::StreamingTraceSource`) instead of loading the
        /// whole file: O(chunk) memory, so traces far larger than RAM
        /// replay. Schedules are bit-identical either way (pinned by
        /// the differential suite). Default `false`.
        streaming: bool,
    },
}

impl Serialize for ArrivalSpec {
    fn to_content(&self) -> serde::Content {
        let (tag, body) = match self {
            ArrivalSpec::Poisson { rate } => (
                "poisson",
                Content::Map(vec![("rate".to_string(), rate.to_content())]),
            ),
            ArrivalSpec::Trace { path, streaming } => {
                let mut fields = vec![("path".to_string(), path.to_content())];
                // Omitted when false: old spec files round-trip untouched.
                if *streaming {
                    fields.push(("streaming".to_string(), streaming.to_content()));
                }
                ("trace", Content::Map(fields))
            }
        };
        Content::Map(vec![(tag.to_string(), body)])
    }
}

impl Deserialize for ArrivalSpec {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        let Content::Map(m) = c else {
            return Err(DeError::expected("map", "ArrivalSpec"));
        };
        let [(tag, body)] = m.as_slice() else {
            return Err(DeError::msg(
                "ArrivalSpec must have exactly one variant key (`poisson` or `trace`)",
            ));
        };
        match tag.as_str() {
            "poisson" => {
                let Content::Map(fields) = body else {
                    return Err(DeError::expected("map", "ArrivalSpec::Poisson"));
                };
                Ok(ArrivalSpec::Poisson {
                    rate: serde::field(fields, "rate")?,
                })
            }
            "trace" => {
                let Content::Map(fields) = body else {
                    return Err(DeError::expected("map", "ArrivalSpec::Trace"));
                };
                Ok(ArrivalSpec::Trace {
                    path: serde::field(fields, "path")?,
                    streaming: match fields.iter().find(|(k, _)| k == "streaming") {
                        None => false,
                        Some((_, v)) => bool::from_content(v)?,
                    },
                })
            }
            other => Err(DeError::msg(format!(
                "unknown arrival kind `{other}` (use `poisson` or `trace`)"
            ))),
        }
    }
}

/// A complete, serializable workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Square switch size (`ports x ports`, unit capacities). For trace
    /// arrivals, 0 means "inherit from the trace header"; a nonzero value
    /// must match the header.
    pub ports: usize,
    /// Arrival rounds. Required for Poisson arrivals to be bounded; for
    /// traces, `None` replays the whole file and `Some(h)` truncates at
    /// release `h`.
    pub horizon: Option<u64>,
    /// The arrival process.
    pub arrivals: ArrivalSpec,
    /// Optional port-outage plan injected during execution.
    pub failures: Option<FailurePlan>,
    /// RNG seed (synthetic arrivals only; ignored for traces).
    pub seed: u64,
}

impl Serialize for ScenarioSpec {
    fn to_content(&self) -> serde::Content {
        let mut m = vec![
            ("ports".to_string(), self.ports.to_content()),
            ("horizon".to_string(), self.horizon.to_content()),
            ("arrivals".to_string(), self.arrivals.to_content()),
        ];
        if let Some(plan) = &self.failures {
            m.push(("failures".to_string(), plan.to_content()));
        }
        m.push(("seed".to_string(), self.seed.to_content()));
        Content::Map(m)
    }
}

impl Deserialize for ScenarioSpec {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        let Content::Map(m) = c else {
            return Err(DeError::expected("map", "ScenarioSpec"));
        };
        let opt = |key: &str| m.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        Ok(ScenarioSpec {
            ports: serde::field(m, "ports")?,
            horizon: match opt("horizon") {
                None => None,
                Some(v) => Option::<u64>::from_content(v)?,
            },
            arrivals: serde::field(m, "arrivals")?,
            failures: match opt("failures") {
                None => None,
                Some(v) => Option::<FailurePlan>::from_content(v)?,
            },
            seed: match opt("seed") {
                None => 0,
                Some(v) => u64::from_content(v)?,
            },
        })
    }
}

impl ScenarioSpec {
    /// A bounded Poisson scenario: the paper's §5.2.1 workload as a spec.
    pub fn poisson(ports: usize, rate: f64, horizon: u64, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            ports,
            horizon: Some(horizon),
            arrivals: ArrivalSpec::Poisson { rate },
            failures: None,
            seed,
        }
    }

    /// A trace-replay scenario over the given file (ports inherited from
    /// the trace header).
    pub fn trace(path: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec {
            ports: 0,
            horizon: None,
            arrivals: ArrivalSpec::Trace {
                path: path.into(),
                streaming: false,
            },
            failures: None,
            seed: 0,
        }
    }

    /// For trace arrivals, choose between the in-memory loader and the
    /// O(chunk)-memory streaming reader (no-op for synthetic arrivals).
    pub fn with_streaming(mut self, on: bool) -> ScenarioSpec {
        if let ArrivalSpec::Trace { streaming, .. } = &mut self.arrivals {
            *streaming = on;
        }
        self
    }

    /// Attach a failure plan.
    pub fn with_failures(mut self, plan: FailurePlan) -> ScenarioSpec {
        self.failures = Some(plan);
        self
    }

    /// Structural validity: ports/rate/horizon make sense together.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        match &self.arrivals {
            ArrivalSpec::Poisson { rate } => {
                if self.ports == 0 {
                    return Err(ScenarioError::BadSpec(
                        "poisson scenario needs ports >= 1".into(),
                    ));
                }
                if !rate.is_finite() || *rate < 0.0 {
                    return Err(ScenarioError::BadSpec(format!(
                        "poisson rate must be finite and nonnegative, got {rate}"
                    )));
                }
            }
            ArrivalSpec::Trace { path, .. } => {
                if path.is_empty() {
                    return Err(ScenarioError::BadSpec("empty trace path".into()));
                }
            }
        }
        if let Some(plan) = &self.failures {
            for o in &plan.outages {
                // Dispatch rounds are open-ended (`round + 1` arithmetic);
                // an outage ending near u64::MAX would push dispatches
                // into overflow territory. Reject it as a spec mistake.
                if o.to > u64::MAX / 2 {
                    return Err(ScenarioError::BadSpec(format!(
                        "outage on {:?} port {} recovers at {}, beyond the supported range",
                        o.side, o.port, o.to
                    )));
                }
            }
        }
        Ok(())
    }

    /// Does the scenario produce finitely many arrivals?
    pub fn is_bounded(&self) -> bool {
        match self.arrivals {
            ArrivalSpec::Poisson { .. } => self.horizon.is_some(),
            ArrivalSpec::Trace { .. } => true,
        }
    }

    /// Open the streaming arrival source this spec describes (loading and
    /// validating the trace file for trace arrivals).
    pub fn source(&self) -> Result<Box<dyn FlowSource + Send>, ScenarioError> {
        self.validate()?;
        match &self.arrivals {
            ArrivalSpec::Poisson { rate } => Ok(Box::new(PoissonSource::new(
                self.ports,
                *rate,
                self.horizon,
                self.seed,
            ))),
            ArrivalSpec::Trace {
                path,
                streaming: false,
            } => {
                let trace = Arc::new(ArrivalTrace::load(path)?);
                if self.ports != 0 && self.ports != trace.ports {
                    return Err(ScenarioError::BadSpec(format!(
                        "spec declares {} ports but trace {path} declares {}",
                        self.ports, trace.ports
                    )));
                }
                Ok(Box::new(TraceSource::with_horizon(trace, self.horizon)))
            }
            ArrivalSpec::Trace {
                path,
                streaming: true,
            } => {
                // Full streaming validation up front (O(chunk) memory,
                // one extra pass), so a bad file fails here with the
                // same error the in-memory loader would report — not
                // silently mid-run.
                let source = fss_trace::StreamingTraceSource::open_validated(path)?;
                if self.ports != 0 && self.ports != source.ports() {
                    return Err(ScenarioError::BadSpec(format!(
                        "spec declares {} ports but trace {path} declares {}",
                        self.ports,
                        source.ports()
                    )));
                }
                Ok(Box::new(source.with_horizon(self.horizon)))
            }
        }
    }

    /// Materialize the scenario as a batch [`Instance`] (flow index ==
    /// arrival order), for the legacy batch paths and differential tests.
    /// Fails on unbounded scenarios.
    pub fn instance(&self) -> Result<Instance, ScenarioError> {
        if !self.is_bounded() {
            return Err(ScenarioError::Unbounded);
        }
        let mut source = self.source()?;
        let mut b = InstanceBuilder::new(Switch::uniform(source.m_in(), source.m_out(), 1));
        while let Some(a) = source.next_arrival() {
            b.unit_flow(a.src, a.dst, a.release);
        }
        Ok(b.build()
            .expect("scenario arrivals respect model invariants"))
    }

    /// Freeze the workload into an [`ArrivalTrace`] for exact replay
    /// (the generator behind `flowsched trace`). Fails on unbounded
    /// scenarios.
    pub fn dump_trace(&self) -> Result<ArrivalTrace, ScenarioError> {
        if !self.is_bounded() {
            return Err(ScenarioError::Unbounded);
        }
        let mut source = self.source()?;
        let ports = source.m_in();
        let mut arrivals = Vec::new();
        while let Some(a) = source.next_arrival() {
            arrivals.push(a);
        }
        ArrivalTrace::new(ports, arrivals)
    }

    /// Execute `policy` over this scenario through the streaming engine
    /// (see [`run_scenario`]).
    pub fn run(&self, policy: PolicyKind) -> Result<StreamStats, ScenarioError> {
        run_scenario(self, policy)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("specs contain only serializable data")
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        serde_json::from_str(text).map_err(|e| ScenarioError::Parse {
            line: 0,
            msg: e.to_string(),
        })
    }

    /// Load a spec file.
    pub fn load(path: impl AsRef<Path>) -> Result<ScenarioSpec, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        ScenarioSpec::from_json(&text)
    }

    /// Write the spec to a file as pretty JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ScenarioError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })
    }
}

/// Execute `policy` over the scenario through the event-driven engine in
/// `O(peak queue)` memory. Schedules are round-for-round identical to the
/// legacy batch runners on the same workload (the engine's exact mode and
/// the failure drive are both differentially tested), so aggregate
/// statistics agree exactly with materialize-then-run.
pub fn run_scenario(spec: &ScenarioSpec, policy: PolicyKind) -> Result<StreamStats, ScenarioError> {
    run_scenario_with(spec, policy, |_, _, _| {})
}

/// [`run_scenario`] with a per-dispatch callback (`on_dispatch(id,
/// release, round)`, once per flow in dispatch order) for consumers that
/// need the schedule, not just the statistics.
pub fn run_scenario_with(
    spec: &ScenarioSpec,
    policy: PolicyKind,
    on_dispatch: impl FnMut(u64, u64, u64),
) -> Result<StreamStats, ScenarioError> {
    run_scenario_telemetry(
        spec,
        policy,
        &mut fss_engine::EngineTelemetry::disabled(),
        on_dispatch,
    )
}

/// [`run_scenario_with`] recording round-loop telemetry into `tele`.
/// Pass [`fss_engine::EngineTelemetry::disabled`] for a measured-zero
/// no-op; the schedule is bit-identical either way (telemetry observes,
/// never steers).
pub fn run_scenario_telemetry(
    spec: &ScenarioSpec,
    policy: PolicyKind,
    tele: &mut fss_engine::EngineTelemetry,
    on_dispatch: impl FnMut(u64, u64, u64),
) -> Result<StreamStats, ScenarioError> {
    let source = spec.source()?;
    Ok(run_source_telemetry(
        source,
        policy,
        spec.failures.as_ref(),
        tele,
        on_dispatch,
    ))
}

/// Drive an already-open [`FlowSource`] through the engine under
/// `policy`, optionally under a [`FailurePlan`].
///
/// This is the single dispatch core every execution path shares:
/// [`run_scenario`] opens its source from a spec and calls it, and the
/// live `flowsched serve` loop feeds it a channel-backed source. One
/// code path is what makes the service's schedule provably identical,
/// round for round, to a batch run over the same arrival sequence —
/// the serve crate's differential suite pins this down for all four
/// §5 policies, with and without failure plans.
pub fn run_source_telemetry(
    source: Box<dyn FlowSource>,
    policy: PolicyKind,
    failures: Option<&FailurePlan>,
    tele: &mut fss_engine::EngineTelemetry,
    on_dispatch: impl FnMut(u64, u64, u64),
) -> StreamStats {
    match failures {
        None => fss_engine::run_stream_telemetry(
            source,
            EngineMode::Exact(policy.to_engine()),
            tele,
            on_dispatch,
        ),
        Some(plan) => match policy {
            PolicyKind::MaxCard => fss_engine::run_stream_failures_telemetry(
                source,
                &mut MaxCard::default(),
                plan,
                tele,
                on_dispatch,
            ),
            PolicyKind::MinRTime => fss_engine::run_stream_failures_telemetry(
                source,
                &mut MinRTime::default(),
                plan,
                tele,
                on_dispatch,
            ),
            PolicyKind::MaxWeight => fss_engine::run_stream_failures_telemetry(
                source,
                &mut MaxWeight::default(),
                plan,
                tele,
                on_dispatch,
            ),
            PolicyKind::FifoGreedy => fss_engine::run_stream_failures_telemetry(
                source,
                &mut FifoGreedy::default(),
                plan,
                tele,
                on_dispatch,
            ),
        },
    }
}

/// [`run_source_telemetry`] over the pipelined multi-core engine
/// ([`fss_engine::run_stream_cores`]). `cores <= 1` delegates to the
/// sequential drive; any `cores` produces the bit-identical schedule
/// (the pipeline's determinism contract, pinned by the engine's
/// differential suite).
pub fn run_source_cores(
    source: Box<dyn FlowSource + Send>,
    policy: PolicyKind,
    failures: Option<&FailurePlan>,
    cores: usize,
    tele: &mut fss_engine::EngineTelemetry,
    on_dispatch: impl FnMut(u64, u64, u64) + Send,
) -> StreamStats {
    match failures {
        None => fss_engine::run_stream_cores(
            source,
            EngineMode::Exact(policy.to_engine()),
            cores,
            tele,
            on_dispatch,
        ),
        Some(plan) => match policy {
            PolicyKind::MaxCard => fss_engine::run_failures_cores(
                source,
                &mut MaxCard::default(),
                plan,
                cores,
                tele,
                on_dispatch,
            ),
            PolicyKind::MinRTime => fss_engine::run_failures_cores(
                source,
                &mut MinRTime::default(),
                plan,
                cores,
                tele,
                on_dispatch,
            ),
            PolicyKind::MaxWeight => fss_engine::run_failures_cores(
                source,
                &mut MaxWeight::default(),
                plan,
                cores,
                tele,
                on_dispatch,
            ),
            PolicyKind::FifoGreedy => fss_engine::run_failures_cores(
                source,
                &mut FifoGreedy::default(),
                plan,
                cores,
                tele,
                on_dispatch,
            ),
        },
    }
}

/// [`run_scenario_telemetry`] over the pipelined multi-core engine:
/// opens the spec's source and drives it with `cores` worker threads.
/// Schedules are bit-identical to [`run_scenario`] at every `cores`.
pub fn run_scenario_cores(
    spec: &ScenarioSpec,
    policy: PolicyKind,
    cores: usize,
    tele: &mut fss_engine::EngineTelemetry,
    on_dispatch: impl FnMut(u64, u64, u64) + Send,
) -> Result<StreamStats, ScenarioError> {
    let source = spec.source()?;
    Ok(run_source_cores(
        source,
        policy,
        spec.failures.as_ref(),
        cores,
        tele,
        on_dispatch,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_spec_round_trips_through_json() {
        let spec = ScenarioSpec::poisson(8, 6.5, 40, 9).with_failures(FailurePlan {
            outages: vec![Outage {
                side: PortSide::Input,
                port: 2,
                from: 3,
                to: 11,
            }],
        });
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn trace_spec_round_trips_and_defaults_apply() {
        let spec = ScenarioSpec::trace("examples/sample_trace.jsonl");
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        // Hand-written minimal JSON: failures and seed may be omitted.
        let minimal = r#"{"ports": 4, "horizon": 10, "arrivals": {"poisson": {"rate": 2.0}}}"#;
        let spec = ScenarioSpec::from_json(minimal).unwrap();
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.failures, None);
        assert_eq!(spec.horizon, Some(10));
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(matches!(
            ScenarioSpec::poisson(0, 1.0, 5, 0).validate(),
            Err(ScenarioError::BadSpec(_))
        ));
        assert!(matches!(
            ScenarioSpec::poisson(4, f64::NAN, 5, 0).validate(),
            Err(ScenarioError::BadSpec(_))
        ));
        assert!(matches!(
            ScenarioSpec::from_json(r#"{"ports": 4, "arrivals": {"bogus": {}}}"#),
            Err(ScenarioError::Parse { .. })
        ));
        let endless = ScenarioSpec {
            horizon: None,
            ..ScenarioSpec::poisson(4, 1.0, 5, 0)
        };
        assert!(!endless.is_bounded());
        assert!(matches!(endless.instance(), Err(ScenarioError::Unbounded)));
        // Outage windows recovering outside the supported round range are
        // spec mistakes, not something to spin on.
        let absurd = ScenarioSpec::poisson(4, 1.0, 5, 0).with_failures(FailurePlan {
            outages: vec![Outage {
                side: PortSide::Input,
                port: 0,
                from: 0,
                to: u64::MAX,
            }],
        });
        assert!(matches!(absurd.validate(), Err(ScenarioError::BadSpec(_))));
    }

    #[test]
    fn scenario_instance_matches_workload_generator() {
        // The spec's materialization must equal the historical
        // `poisson_workload` output for the same seed — the contract that
        // lets old seed formulas be re-expressed as ScenarioSpecs.
        use rand::{rngs::SmallRng, SeedableRng};
        let spec = ScenarioSpec::poisson(6, 4.0, 15, 33);
        let inst = spec.instance().unwrap();
        let mut rng = SmallRng::seed_from_u64(33);
        let want = crate::workload::poisson_workload(
            &mut rng,
            &crate::workload::WorkloadParams {
                m: 6,
                mean_arrivals: 4.0,
                rounds: 15,
            },
        );
        assert_eq!(inst, want);
    }

    #[test]
    fn run_scenario_agrees_with_batch_metrics() {
        let spec = ScenarioSpec::poisson(7, 5.0, 20, 4);
        let inst = spec.instance().unwrap();
        for policy in [
            PolicyKind::MaxCard,
            PolicyKind::MinRTime,
            PolicyKind::MaxWeight,
            PolicyKind::FifoGreedy,
        ] {
            let stats = run_scenario(&spec, policy).unwrap();
            let met = fss_core::metrics::evaluate(&inst, &policy.run(&inst));
            assert_eq!(stats.dispatched as usize, met.n, "{}", policy.name());
            assert_eq!(stats.total_response, u128::from(met.total_response));
            assert_eq!(stats.max_response, met.max_response);
            assert_eq!(stats.makespan, met.makespan);
        }
    }

    #[test]
    fn dump_trace_replays_identically() {
        let dir = std::env::temp_dir().join("fss-scenario-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        let spec = ScenarioSpec::poisson(5, 3.0, 12, 8);
        let trace = spec.dump_trace().unwrap();
        trace.save(&path).unwrap();
        let replay = ScenarioSpec::trace(path.to_string_lossy());
        assert_eq!(replay.instance().unwrap(), spec.instance().unwrap());
        let a = run_scenario(&replay, PolicyKind::MinRTime).unwrap();
        let b = run_scenario(&spec, PolicyKind::MinRTime).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_knob_round_trips_and_replays_identically() {
        let dir = std::env::temp_dir().join("fss-scenario-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream-knob.jsonl");
        ScenarioSpec::poisson(6, 4.0, 25, 17)
            .dump_trace()
            .unwrap()
            .save(&path)
            .unwrap();

        let in_mem = ScenarioSpec::trace(path.to_string_lossy());
        let streamed = in_mem.clone().with_streaming(true);
        // `streaming: true` survives JSON; `false` is omitted so old
        // spec files round-trip byte-for-byte.
        assert_eq!(
            ScenarioSpec::from_json(&streamed.to_json()).unwrap(),
            streamed
        );
        assert!(!in_mem.to_json().contains("streaming"));
        assert!(streamed.to_json().contains("\"streaming\""));

        for policy in [
            PolicyKind::MaxCard,
            PolicyKind::MinRTime,
            PolicyKind::MaxWeight,
            PolicyKind::FifoGreedy,
        ] {
            assert_eq!(
                run_scenario(&streamed, policy).unwrap(),
                run_scenario(&in_mem, policy).unwrap(),
                "{}",
                policy.name()
            );
        }
    }

    #[test]
    fn streaming_source_reports_load_style_errors() {
        let dir = std::env::temp_dir().join("fss-scenario-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streaming-bad.jsonl");
        std::fs::write(
            &path,
            "{\"ports\":2}\n{\"release\":0,\"src\":0,\"dst\":1}\n{\"release\":1,\"src\":5,\"dst\":0}\n",
        )
        .unwrap();
        let spec = ScenarioSpec::trace(path.to_string_lossy()).with_streaming(true);
        assert_eq!(
            spec.source().err(),
            Some(ScenarioError::PortOutOfRange {
                line: 3,
                port: 5,
                ports: 2
            }),
            "streaming validation matches the in-memory loader's diagnosis"
        );
        // Port mismatch against the spec is caught before any replay.
        std::fs::write(&path, "{\"ports\":2}\n").unwrap();
        let spec = ScenarioSpec {
            ports: 4,
            ..ScenarioSpec::trace(path.to_string_lossy()).with_streaming(true)
        };
        assert!(matches!(spec.source(), Err(ScenarioError::BadSpec(_))));
    }

    #[test]
    fn failures_route_through_the_failure_drive() {
        let plan = FailurePlan {
            outages: vec![Outage {
                side: PortSide::Input,
                port: 0,
                from: 0,
                to: 6,
            }],
        };
        let spec = ScenarioSpec::poisson(4, 2.0, 10, 21).with_failures(plan.clone());
        let inst = spec.instance().unwrap();
        let stats = run_scenario(&spec, PolicyKind::MaxCard).unwrap();
        let sched =
            crate::failures::run_policy_with_failures(&inst, &mut MaxCard::default(), &plan);
        let met = fss_core::metrics::evaluate(&inst, &sched);
        assert_eq!(stats.dispatched as usize, met.n);
        assert_eq!(stats.total_response, u128::from(met.total_response));
        assert_eq!(stats.max_response, met.max_response);
    }
}
