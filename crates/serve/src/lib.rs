//! # fss-serve — the live flow-scheduler service behind `flowsched serve`
//!
//! The batch paths (`run_scenario`, the bench registry) answer "what
//! would the scheduler have done"; this crate answers "what should the
//! switch do *now*". A serve process ingests JSONL arrival events on a
//! socket or stdin — the same line schema as an on-disk arrival trace,
//! so a raw trace file pipes straight in — drives the engine's round
//! loop with the incremental matchers on a dedicated thread, and
//! streams every dispatch decision back as a JSONL response line.
//!
//! The load-bearing design decision is **parity by construction**: the
//! engine thread consumes a blocking [`fss_engine::ChannelSource`]
//! through [`fss_sim::run_source_telemetry`] — the *same* dispatch core
//! every batch run uses — and the drive loops pull exactly one arrival
//! ahead, so the schedule depends only on the admitted arrival
//! *sequence*, never on timing. Feed serve the lines of a dumped trace
//! and its dispatch stream is bit-identical to `run_scenario` on the
//! same spec, for all four §5 policies, with or without failure plans
//! (`tests/differential.rs` pins this down).
//!
//! * [`proto`] — the JSONL serve protocol: ingest line sniffing
//!   (header / arrival / control) and the [`ServeMsg`] response lines;
//! * [`admission`] — the bounded ingest queue: an [`AdmissionGate`]
//!   that either blocks the producer ([`AdmissionMode::Pause`],
//!   lossless backpressure) or sheds load with explicit
//!   `{"kind":"Dropped",...}` reports ([`AdmissionMode::Drop`]) —
//!   never silent loss, property-tested in `tests/admission.rs`;
//! * [`session`] — the transport-free [`ServeSession`] driver (sink +
//!   gate + engine thread) that tests run over byte buffers, exactly
//!   like the dist worker's scripted sessions;
//! * [`metrics`] — the [`ServeMetrics`] registry and its Prometheus
//!   rendering (flows/s, live queue depth, p50/p99 decision latency,
//!   admission counters) served over an HTTP `/metrics` listener;
//! * [`server`] — the blocking TCP accept loop with mid-run client
//!   disconnect/reconnect (dispatch lines buffer while detached; a
//!   `Detached` marker closes each connection's stream cleanly);
//! * [`soak`] — the configurable soak harness: stream millions of
//!   flows through a real socket server under injected outages, with
//!   one disconnect/reconnect and a metrics scrape, then strict-diff
//!   the dispatch stream against the single-process reference.

#![deny(missing_docs)]

pub mod admission;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod session;
pub mod soak;

pub use admission::{Admission, AdmissionGate, AdmissionMode};
pub use metrics::ServeMetrics;
pub use proto::{parse_ingest, IngestLine, ServeKind, ServeMsg, ServeStats, SERVE_PROTO_VERSION};
pub use server::{run_server_on, serve_stdio, spawn_metrics_server};
pub use session::{serve_reader, Ingested, ServeOptions, ServeSession, Sink};
pub use soak::{run_soak, SoakOptions, SoakReport};
