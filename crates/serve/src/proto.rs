//! The serve-session JSONL protocol.
//!
//! **Ingest** (client → server) reuses the on-disk arrival-trace schema
//! verbatim — a `{"ports":N}` header followed by
//! `{"release":R,"src":S,"dst":D}` arrival lines — so a dumped trace
//! file pipes straight into a live session (`flowsched trace dump ... |
//! flowsched serve`). Control lines are [`ServeMsg`]s with a `"kind"`
//! tag: `Finish` ends the session cleanly, `Metrics` requests an inline
//! metrics snapshot. [`parse_ingest`] sniffs the three shapes by
//! try-parse order: trace events first (arrivals dominate by volume),
//! then control messages. A pathological line carrying *both* shapes
//! (`release`/`src`/`dst` *and* `kind`) parses as an arrival.
//!
//! **Response** (server → client) lines are [`ServeMsg`]s. Unlike the
//! dist wire protocol, serialization **omits** `None` payload fields
//! instead of writing `null`: at soak scale the stream is millions of
//! `Dispatch` lines, and `{"kind":"Dispatch","id":..,"release":..,
//! "round":..}` is less than half the bytes of the null-padded form.
//! Reads stay tolerant (only `kind` required; missing-or-`null` →
//! `None`), matching the dist `proto.rs` discipline.

use fss_sim::PolicyKind;
use serde::{Content, DeError, Deserialize, Serialize};

/// Serve protocol version, reported in the `Started` banner. Bump on
/// any change to [`ServeMsg`] shape or semantics.
pub const SERVE_PROTO_VERSION: u32 = 1;

/// Response-line discriminator (serialized as the variant name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeKind {
    /// Server → client: session banner — protocol version, port count,
    /// policy, and admission configuration. First line on every
    /// connection.
    Started,
    /// Server → client: one dispatch decision (flow `id` admitted at
    /// `release` left the switch in round `round`).
    Dispatch,
    /// Server → client: admission control shed this arrival
    /// (`AdmissionMode::Drop` with the ingest queue full). Carries the
    /// arrival's coordinates so the loss is attributable, never silent.
    Dropped,
    /// Server → client: admission control is blocking the producer
    /// (`AdmissionMode::Pause` with the ingest queue full).
    Paused,
    /// Server → client: the paused arrival was admitted; ingest
    /// continues.
    Resumed,
    /// Server → client: stream marker written when the client
    /// connection goes away mid-session; later dispatch lines buffer
    /// until a client reattaches.
    Detached,
    /// Server → client: inline metrics snapshot (Prometheus text in
    /// `text`), in reply to a `Metrics` control line.
    Metrics,
    /// Server → client: final session accounting after `Finish`.
    Stats,
    /// Server → client: fatal protocol error (e.g. out-of-range port,
    /// time running backwards); the session is dead.
    Error,
    /// Client → server: drain the queue, stop the engine, report
    /// `Stats`, and end the session.
    Finish,
}

/// One response/control message: a `kind` tag plus the union of all
/// payload fields (unused ones `None` and omitted from the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMsg {
    /// Which message this is.
    pub kind: ServeKind,
    /// `Started`: protocol version ([`SERVE_PROTO_VERSION`]).
    pub proto: Option<u32>,
    /// `Started`: switch port count the session is running with.
    pub ports: Option<usize>,
    /// `Started`: the scheduling policy driving dispatch.
    pub policy: Option<PolicyKind>,
    /// `Started`: ingest queue capacity (admission bound).
    pub queue_cap: Option<usize>,
    /// `Started`: admission mode name (`"pause"` or `"drop"`).
    pub admission: Option<String>,
    /// `Dispatch`/`Resumed`: flow id (dense admission sequence).
    pub id: Option<u64>,
    /// `Dispatch`/`Dropped`: the arrival's release round.
    pub release: Option<u64>,
    /// `Dispatch`: the round the flow was dispatched in.
    pub round: Option<u64>,
    /// `Dropped`: the arrival's input port.
    pub src: Option<u32>,
    /// `Dropped`: the arrival's output port.
    pub dst: Option<u32>,
    /// `Dropped`/`Paused`/`Resumed`: ingest queue depth at the event.
    pub queued: Option<u64>,
    /// `Metrics`: Prometheus text exposition of the live registry.
    pub text: Option<String>,
    /// `Stats`: arrivals offered to admission.
    pub arrived: Option<u64>,
    /// `Stats`: arrivals admitted into the engine.
    pub admitted: Option<u64>,
    /// `Stats`: arrivals shed by `Drop`-mode admission.
    pub dropped: Option<u64>,
    /// `Stats`: flows dispatched by the engine.
    pub dispatched: Option<u64>,
    /// `Stats`: times `Pause`-mode admission blocked the producer.
    pub pauses: Option<u64>,
    /// `Stats`: last dispatch round.
    pub makespan: Option<u64>,
    /// `Stats`: sum of per-flow response times (saturated to `u64`).
    pub total_response: Option<u64>,
    /// `Stats`: worst single-flow response time.
    pub max_response: Option<u64>,
    /// `Stats`: peak engine backlog (pending + active flows).
    pub peak_queue: Option<u64>,
    /// `Error`: what went wrong.
    pub error: Option<String>,
}

/// Final session accounting, flattened into the `Stats` line.
///
/// The conservation law the admission tests pin down:
/// `arrived == admitted + dropped` and (once the engine drains)
/// `admitted == dispatched` — every offered arrival is accounted for,
/// either dispatched or explicitly reported dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Arrivals offered to admission control.
    pub arrived: u64,
    /// Arrivals admitted into the engine's ingest queue.
    pub admitted: u64,
    /// Arrivals shed (with a `Dropped` line each).
    pub dropped: u64,
    /// Flows dispatched by the engine.
    pub dispatched: u64,
    /// Times the producer was blocked by `Pause`-mode admission.
    pub pauses: u64,
    /// Last dispatch round.
    pub makespan: u64,
    /// Sum of per-flow response times (saturated to `u64`).
    pub total_response: u64,
    /// Worst single-flow response time.
    pub max_response: u64,
    /// Peak engine backlog (pending + active flows).
    pub peak_queue: u64,
}

fn push<T: Serialize>(m: &mut Vec<(String, Content)>, key: &str, v: &Option<T>) {
    if let Some(v) = v {
        m.push((key.to_string(), v.to_content()));
    }
}

impl Serialize for ServeMsg {
    fn to_content(&self) -> Content {
        let mut m = vec![("kind".to_string(), self.kind.to_content())];
        push(&mut m, "proto", &self.proto);
        push(&mut m, "ports", &self.ports);
        push(&mut m, "policy", &self.policy);
        push(&mut m, "queue_cap", &self.queue_cap);
        push(&mut m, "admission", &self.admission);
        push(&mut m, "id", &self.id);
        push(&mut m, "release", &self.release);
        push(&mut m, "round", &self.round);
        push(&mut m, "src", &self.src);
        push(&mut m, "dst", &self.dst);
        push(&mut m, "queued", &self.queued);
        push(&mut m, "text", &self.text);
        push(&mut m, "arrived", &self.arrived);
        push(&mut m, "admitted", &self.admitted);
        push(&mut m, "dropped", &self.dropped);
        push(&mut m, "dispatched", &self.dispatched);
        push(&mut m, "pauses", &self.pauses);
        push(&mut m, "makespan", &self.makespan);
        push(&mut m, "total_response", &self.total_response);
        push(&mut m, "max_response", &self.max_response);
        push(&mut m, "peak_queue", &self.peak_queue);
        push(&mut m, "error", &self.error);
        Content::Map(m)
    }
}

/// Look up `key`, treating a missing key and an explicit `null`
/// identically as `None` (same tolerant-read discipline as the dist
/// wire protocol).
fn opt<T: Deserialize>(m: &[(String, Content)], key: &str) -> Result<Option<T>, DeError> {
    match m.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, v)) => Option::<T>::from_content(v),
    }
}

impl Deserialize for ServeMsg {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let Content::Map(m) = c else {
            return Err(DeError::expected("map", "ServeMsg"));
        };
        Ok(ServeMsg {
            kind: serde::field(m, "kind")?,
            proto: opt(m, "proto")?,
            ports: opt(m, "ports")?,
            policy: opt(m, "policy")?,
            queue_cap: opt(m, "queue_cap")?,
            admission: opt(m, "admission")?,
            id: opt(m, "id")?,
            release: opt(m, "release")?,
            round: opt(m, "round")?,
            src: opt(m, "src")?,
            dst: opt(m, "dst")?,
            queued: opt(m, "queued")?,
            text: opt(m, "text")?,
            arrived: opt(m, "arrived")?,
            admitted: opt(m, "admitted")?,
            dropped: opt(m, "dropped")?,
            dispatched: opt(m, "dispatched")?,
            pauses: opt(m, "pauses")?,
            makespan: opt(m, "makespan")?,
            total_response: opt(m, "total_response")?,
            max_response: opt(m, "max_response")?,
            peak_queue: opt(m, "peak_queue")?,
            error: opt(m, "error")?,
        })
    }
}

impl ServeMsg {
    fn base(kind: ServeKind) -> ServeMsg {
        ServeMsg {
            kind,
            proto: None,
            ports: None,
            policy: None,
            queue_cap: None,
            admission: None,
            id: None,
            release: None,
            round: None,
            src: None,
            dst: None,
            queued: None,
            text: None,
            arrived: None,
            admitted: None,
            dropped: None,
            dispatched: None,
            pauses: None,
            makespan: None,
            total_response: None,
            max_response: None,
            peak_queue: None,
            error: None,
        }
    }

    /// Build the `Started` session banner.
    pub fn started(
        ports: usize,
        policy: PolicyKind,
        queue_cap: usize,
        admission: &str,
    ) -> ServeMsg {
        ServeMsg {
            proto: Some(SERVE_PROTO_VERSION),
            ports: Some(ports),
            policy: Some(policy),
            queue_cap: Some(queue_cap),
            admission: Some(admission.to_string()),
            ..ServeMsg::base(ServeKind::Started)
        }
    }

    /// Build a `Dispatch` decision line.
    pub fn dispatch(id: u64, release: u64, round: u64) -> ServeMsg {
        ServeMsg {
            id: Some(id),
            release: Some(release),
            round: Some(round),
            ..ServeMsg::base(ServeKind::Dispatch)
        }
    }

    /// Build a `Dropped` admission report.
    pub fn dropped(release: u64, src: u32, dst: u32, queued: u64) -> ServeMsg {
        ServeMsg {
            release: Some(release),
            src: Some(src),
            dst: Some(dst),
            queued: Some(queued),
            ..ServeMsg::base(ServeKind::Dropped)
        }
    }

    /// Build a `Paused` backpressure marker.
    pub fn paused(queued: u64) -> ServeMsg {
        ServeMsg {
            queued: Some(queued),
            ..ServeMsg::base(ServeKind::Paused)
        }
    }

    /// Build a `Resumed` backpressure marker.
    pub fn resumed(id: u64, queued: u64) -> ServeMsg {
        ServeMsg {
            id: Some(id),
            queued: Some(queued),
            ..ServeMsg::base(ServeKind::Resumed)
        }
    }

    /// Build a `Detached` stream marker.
    pub fn detached() -> ServeMsg {
        ServeMsg::base(ServeKind::Detached)
    }

    /// Build a `Metrics` reply carrying the Prometheus exposition.
    pub fn metrics(text: impl Into<String>) -> ServeMsg {
        ServeMsg {
            text: Some(text.into()),
            ..ServeMsg::base(ServeKind::Metrics)
        }
    }

    /// Build the final `Stats` accounting line.
    pub fn stats(s: &ServeStats) -> ServeMsg {
        ServeMsg {
            arrived: Some(s.arrived),
            admitted: Some(s.admitted),
            dropped: Some(s.dropped),
            dispatched: Some(s.dispatched),
            pauses: Some(s.pauses),
            makespan: Some(s.makespan),
            total_response: Some(s.total_response),
            max_response: Some(s.max_response),
            peak_queue: Some(s.peak_queue),
            ..ServeMsg::base(ServeKind::Stats)
        }
    }

    /// Build an `Error` report.
    pub fn error(message: impl Into<String>) -> ServeMsg {
        ServeMsg {
            error: Some(message.into()),
            ..ServeMsg::base(ServeKind::Error)
        }
    }

    /// Build a `Finish` control line (client → server).
    pub fn finish() -> ServeMsg {
        ServeMsg::base(ServeKind::Finish)
    }

    /// Serialize to one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("serve messages contain only finite numbers")
    }

    /// Parse one JSONL line.
    pub fn parse(line: &str) -> Result<ServeMsg, String> {
        serde_json::from_str(line).map_err(|e| format!("bad serve line: {e}"))
    }
}

/// One sniffed ingest line (see [`parse_ingest`]).
#[derive(Debug, Clone, PartialEq)]
pub enum IngestLine {
    /// A `{"ports":N}` trace header.
    Header {
        /// Switch port count.
        ports: usize,
    },
    /// A `{"release":R,"src":S,"dst":D}` arrival event.
    Arrival {
        /// Release round (must be nondecreasing across the session).
        release: u64,
        /// Input port.
        src: u32,
        /// Output port.
        dst: u32,
    },
    /// A `{"kind":...}` control message (`Finish`, `Metrics`, ...).
    /// Boxed: control lines are rare next to arrivals, and the box
    /// keeps the hot-path enum two words wide.
    Control(Box<ServeMsg>),
}

/// Sniff one ingest line: trace events first (headers and arrivals —
/// the hot path at soak scale), then `{"kind":...}` control messages.
pub fn parse_ingest(line: &str) -> Result<IngestLine, String> {
    match fss_sim::parse_trace_event(line) {
        Ok(fss_sim::TraceEvent::Header { ports }) => return Ok(IngestLine::Header { ports }),
        Ok(fss_sim::TraceEvent::Arrival { release, src, dst }) => {
            return Ok(IngestLine::Arrival { release, src, dst })
        }
        Err(_) => {}
    }
    ServeMsg::parse(line)
        .map(|msg| IngestLine::Control(Box::new(msg)))
        .map_err(|e| {
            format!(
            "not an ingest line (expected a trace header, an arrival, or a control message): {e}"
        )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_kind_round_trips_through_jsonl() {
        let stats = ServeStats {
            arrived: 10,
            admitted: 9,
            dropped: 1,
            dispatched: 9,
            pauses: 2,
            makespan: 17,
            total_response: 40,
            max_response: 8,
            peak_queue: 5,
        };
        let msgs = vec![
            ServeMsg::started(8, PolicyKind::MaxCard, 1024, "pause"),
            ServeMsg::dispatch(3, 1, 4),
            ServeMsg::dropped(5, 2, 6, 1024),
            ServeMsg::paused(1024),
            ServeMsg::resumed(7, 1023),
            ServeMsg::detached(),
            ServeMsg::metrics("fss_serve_flows_ingested_total 10\n"),
            ServeMsg::stats(&stats),
            ServeMsg::error("port 9 out of range"),
            ServeMsg::finish(),
        ];
        for msg in msgs {
            let line = msg.to_line();
            assert!(!line.contains('\n') || msg.text.is_some());
            let parsed = ServeMsg::parse(&line).expect("round trip");
            assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn serialization_omits_absent_fields() {
        // Dispatch lines dominate the stream at soak scale; they must
        // not carry two dozen null payload keys.
        let line = ServeMsg::dispatch(3, 1, 4).to_line();
        assert_eq!(line, r#"{"kind":"Dispatch","id":3,"release":1,"round":4}"#);
        assert_eq!(ServeMsg::finish().to_line(), r#"{"kind":"Finish"}"#);
    }

    #[test]
    fn reads_are_tolerant_of_missing_and_null_fields() {
        // Only `kind` is required; null and missing are the same.
        let msg = ServeMsg::parse(r#"{"kind":"Dispatch","id":1,"queued":null}"#).unwrap();
        assert_eq!(msg.kind, ServeKind::Dispatch);
        assert_eq!(msg.id, Some(1));
        assert_eq!(msg.queued, None);
        assert_eq!(msg.release, None);
        assert!(ServeMsg::parse(r#"{"id":1}"#).is_err(), "kind is required");
    }

    #[test]
    fn ingest_sniffing_prefers_trace_events() {
        assert_eq!(
            parse_ingest(r#"{"ports":8}"#).unwrap(),
            IngestLine::Header { ports: 8 }
        );
        assert_eq!(
            parse_ingest(r#"{"release":2,"src":1,"dst":3}"#).unwrap(),
            IngestLine::Arrival {
                release: 2,
                src: 1,
                dst: 3
            }
        );
        assert_eq!(
            parse_ingest(r#"{"kind":"Finish"}"#).unwrap(),
            IngestLine::Control(Box::new(ServeMsg::finish()))
        );
        // A pathological line carrying both shapes sniffs as an arrival
        // (trace events win the try-parse order).
        assert!(matches!(
            parse_ingest(r#"{"release":2,"src":1,"dst":3,"kind":"Finish"}"#).unwrap(),
            IngestLine::Arrival { .. }
        ));
        assert!(parse_ingest("not json").is_err());
        assert!(parse_ingest(r#"{"proto":1}"#).is_err());
    }
}
