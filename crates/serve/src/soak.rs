//! The soak harness: stream a full scenario through a *real* socket
//! server and strict-diff the live dispatch stream against the
//! single-process reference.
//!
//! One [`run_soak`] call:
//!
//! 1. materializes the scenario's arrival trace in memory
//!    ([`ScenarioSpec::dump_trace`]) and computes the **reference**
//!    dispatch stream by replaying it through
//!    [`fss_sim::run_source_telemetry`] in-process;
//! 2. boots [`run_server_on`] on an ephemeral localhost port (with the
//!    scenario's failure plan injected and a `/metrics` listener);
//! 3. plays the trace as a client: optionally disconnecting after
//!    `disconnect_after` arrivals (write half-close, drain the response
//!    stream to its `Detached` marker), scraping `/metrics` over raw
//!    HTTP during the disconnect window, then reconnecting and sending
//!    the rest plus `Finish`;
//! 4. concatenates the `Dispatch` lines received across connections and
//!    compares them **string-for-string** against the reference — the
//!    strictest possible parity check — and verifies conservation
//!    (every arrival admitted and dispatched, nothing silently lost).
//!
//! Admission runs in `Pause` mode so the check is deterministic: the
//! gate blocks rather than sheds when the client outruns the engine,
//! which is exactly the regime a multi-million-flow soak spends most of
//! its time in. Each connection gets a dedicated reader thread so the
//! client never deadlocks against a full TCP write buffer while the
//! server streams responses.

use crate::proto::{ServeKind, ServeMsg, ServeStats};
use crate::server::run_server_on;
use crate::session::ServeOptions;
use fss_engine::EngineTelemetry;
use fss_sim::{run_source_telemetry, PolicyKind, ScenarioSpec, TraceSource};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

/// Soak configuration.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// The workload (ports, arrivals, optional failure plan, seed).
    /// Must be bounded — the trace is materialized up front.
    pub spec: ScenarioSpec,
    /// Scheduling policy under test.
    pub policy: PolicyKind,
    /// Ingest queue capacity for the live server.
    pub queue_cap: usize,
    /// Disconnect the client after this many arrivals and reconnect
    /// (`None` = a single connection end to end).
    pub disconnect_after: Option<u64>,
    /// Scrape `/metrics` over HTTP mid-run and include it in the report.
    pub scrape_metrics: bool,
}

impl SoakOptions {
    /// A soak over `spec` with the default knobs (MaxCard, queue 1024,
    /// one mid-run disconnect, metrics scraped).
    pub fn new(spec: ScenarioSpec) -> SoakOptions {
        SoakOptions {
            spec,
            policy: PolicyKind::MaxCard,
            queue_cap: 1024,
            disconnect_after: None,
            scrape_metrics: true,
        }
    }
}

/// What a soak run observed. [`run_soak`] already *fails* on parity or
/// conservation violations; the report carries the evidence.
#[derive(Debug)]
pub struct SoakReport {
    /// Arrivals in the materialized trace (== flows streamed).
    pub flows: u64,
    /// The live server's final accounting.
    pub stats: ServeStats,
    /// Dispatch lines received (== `flows` after the parity check).
    pub dispatch_lines: u64,
    /// Whether the first connection's stream ended with the `Detached`
    /// marker (always true when `disconnect_after` is set).
    pub detached_seen: bool,
    /// The mid-run `/metrics` scrape, if requested.
    pub scrape: Option<String>,
}

/// Read response lines until EOF on a dedicated thread (so the writer
/// side can never deadlock against a full TCP buffer).
fn spawn_reader(stream: TcpStream) -> thread::JoinHandle<Vec<String>> {
    thread::spawn(move || {
        let mut lines = Vec::new();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    let t = line.trim();
                    if !t.is_empty() {
                        lines.push(t.to_string());
                    }
                }
            }
        }
        lines
    })
}

fn scrape_http(addr: std::net::SocketAddr) -> Result<String, String> {
    let mut conn = TcpStream::connect(addr).map_err(|e| format!("connect metrics: {e}"))?;
    write!(conn, "GET /metrics HTTP/1.1\r\nHost: soak\r\n\r\n")
        .map_err(|e| format!("send scrape: {e}"))?;
    conn.shutdown(Shutdown::Write).ok();
    let mut reply = String::new();
    conn.read_to_string(&mut reply)
        .map_err(|e| format!("read scrape: {e}"))?;
    let body = reply
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed scrape reply: {reply:?}"))?
        .1
        .to_string();
    if !reply.starts_with("HTTP/1.1 200") {
        return Err(format!("scrape returned non-200: {reply:?}"));
    }
    Ok(body)
}

/// Run one soak (see the module docs). `Err` on any I/O failure, parity
/// mismatch, or conservation violation.
pub fn run_soak(opts: &SoakOptions) -> Result<SoakReport, String> {
    let trace = opts
        .spec
        .dump_trace()
        .map_err(|e| format!("materialize trace: {e}"))?;
    let flows = trace.arrivals.len() as u64;

    // Reference dispatch stream: same trace, same policy, same failure
    // plan, through the same dispatch core — in one process.
    let mut reference = Vec::with_capacity(trace.arrivals.len());
    run_source_telemetry(
        Box::new(TraceSource::new(Arc::new(trace.clone()))),
        opts.policy,
        opts.spec.failures.as_ref(),
        &mut EngineTelemetry::disabled(),
        |id, release, round| reference.push(ServeMsg::dispatch(id, release, round).to_line()),
    );

    // Live server on ephemeral localhost ports.
    let ingest_listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind ingest: {e}"))?;
    let ingest_addr = ingest_listener.local_addr().map_err(|e| e.to_string())?;
    let metrics_listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind metrics: {e}"))?;
    let metrics_addr = metrics_listener.local_addr().map_err(|e| e.to_string())?;
    let serve_opts = ServeOptions {
        ports: trace.ports,
        policy: opts.policy,
        failures: opts.spec.failures.clone(),
        queue_cap: opts.queue_cap,
        ..ServeOptions::default()
    };
    let server =
        thread::spawn(move || run_server_on(ingest_listener, Some(metrics_listener), serve_opts));

    // Client: connection 1 (header + first chunk).
    let cut = opts
        .disconnect_after
        .map(|n| (n as usize).min(trace.arrivals.len()))
        .unwrap_or(trace.arrivals.len());
    let conn1 = TcpStream::connect(ingest_addr).map_err(|e| format!("connect 1: {e}"))?;
    let reader1 = spawn_reader(conn1.try_clone().map_err(|e| e.to_string())?);
    {
        let mut w = BufWriter::new(&conn1);
        writeln!(w, "{{\"ports\":{}}}", trace.ports).map_err(|e| format!("send header: {e}"))?;
        for a in &trace.arrivals[..cut] {
            writeln!(
                w,
                "{{\"release\":{},\"src\":{},\"dst\":{}}}",
                a.release, a.src, a.dst
            )
            .map_err(|e| format!("send arrival: {e}"))?;
        }
        w.flush().map_err(|e| format!("flush conn 1: {e}"))?;
    }
    let mut detached_seen = false;
    let mut scrape = None;
    let mut lines = if opts.disconnect_after.is_some() {
        // Half-close: the server sees EOF, detaches (terminating our
        // stream with a marker), and waits for the reconnect.
        conn1
            .shutdown(Shutdown::Write)
            .map_err(|e| format!("half-close: {e}"))?;
        let lines1 = reader1
            .join()
            .map_err(|_| "reader 1 panicked".to_string())?;
        detached_seen = lines1
            .last()
            .and_then(|l| ServeMsg::parse(l).ok())
            .is_some_and(|m| m.kind == ServeKind::Detached);
        if opts.scrape_metrics {
            scrape = Some(scrape_http(metrics_addr)?);
        }

        // Connection 2: the rest of the trace + Finish.
        let conn2 = TcpStream::connect(ingest_addr).map_err(|e| format!("connect 2: {e}"))?;
        let reader2 = spawn_reader(conn2.try_clone().map_err(|e| e.to_string())?);
        {
            let mut w = BufWriter::new(&conn2);
            for a in &trace.arrivals[cut..] {
                writeln!(
                    w,
                    "{{\"release\":{},\"src\":{},\"dst\":{}}}",
                    a.release, a.src, a.dst
                )
                .map_err(|e| format!("send arrival: {e}"))?;
            }
            writeln!(w, "{}", ServeMsg::finish().to_line())
                .map_err(|e| format!("send finish: {e}"))?;
            w.flush().map_err(|e| format!("flush conn 2: {e}"))?;
        }
        let mut lines = lines1;
        lines.extend(
            reader2
                .join()
                .map_err(|_| "reader 2 panicked".to_string())?,
        );
        lines
    } else {
        // Scrape while the session is provably alive (before Finish —
        // the metrics listener stops when the session ends).
        if opts.scrape_metrics {
            scrape = Some(scrape_http(metrics_addr)?);
        }
        let mut w = BufWriter::new(&conn1);
        writeln!(w, "{}", ServeMsg::finish().to_line()).map_err(|e| format!("send finish: {e}"))?;
        w.flush().map_err(|e| format!("flush finish: {e}"))?;
        drop(w);
        reader1.join().map_err(|_| "reader panicked".to_string())?
    };

    let stats = server
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server failed: {e}"))?;

    // Conservation: every offered arrival admitted (Pause mode is
    // lossless) and dispatched; nothing silently lost.
    if stats.arrived != flows || stats.dropped != 0 || stats.dispatched != flows {
        return Err(format!(
            "conservation violated: {flows} flows sent, arrived={} dropped={} dispatched={}",
            stats.arrived, stats.dropped, stats.dispatched
        ));
    }

    // Strict parity: the concatenated Dispatch lines must equal the
    // reference stream string-for-string.
    lines.retain(|l| l.contains("\"kind\":\"Dispatch\""));
    if lines.len() != reference.len() {
        return Err(format!(
            "parity violated: served {} dispatch lines, reference has {}",
            lines.len(),
            reference.len()
        ));
    }
    for (i, (got, want)) in lines.iter().zip(reference.iter()).enumerate() {
        if got != want {
            return Err(format!(
                "parity violated at dispatch {i}: served {got} but reference says {want}"
            ));
        }
    }

    Ok(SoakReport {
        flows,
        stats,
        dispatch_lines: lines.len() as u64,
        detached_seen,
        scrape,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_sim::ArrivalSpec;

    fn poisson_spec(ports: usize, rate: f64, rounds: u64) -> ScenarioSpec {
        ScenarioSpec {
            ports,
            horizon: Some(rounds),
            arrivals: ArrivalSpec::Poisson { rate },
            failures: None,
            seed: 7,
        }
    }

    #[test]
    fn a_small_soak_holds_parity_without_a_disconnect() {
        let opts = SoakOptions {
            disconnect_after: None,
            ..SoakOptions::new(poisson_spec(8, 4.0, 40))
        };
        let report = run_soak(&opts).expect("soak passes");
        assert!(report.flows > 0);
        assert_eq!(report.dispatch_lines, report.flows);
        assert!(!report.detached_seen);
        let scrape = report.scrape.expect("scraped");
        assert!(scrape.contains("fss_serve_flows_ingested_total"));
    }

    #[test]
    fn a_soak_with_disconnect_and_outage_holds_parity() {
        use fss_sim::{FailurePlan, Outage};
        let mut spec = poisson_spec(8, 4.0, 60);
        spec.failures = Some(FailurePlan {
            outages: vec![Outage {
                side: fss_core::PortSide::Input,
                port: 2,
                from: 5,
                to: 15,
            }],
        });
        let opts = SoakOptions {
            disconnect_after: Some(50),
            queue_cap: 16,
            ..SoakOptions::new(spec)
        };
        let report = run_soak(&opts).expect("soak passes");
        assert!(report.flows > 50, "cut point falls mid-trace");
        assert!(report.detached_seen, "first stream ended with the marker");
        assert_eq!(report.dispatch_lines, report.flows);
        assert_eq!(report.stats.dropped, 0);
    }
}
