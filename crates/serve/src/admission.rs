//! Bounded-queue admission control for the ingest path.
//!
//! The serve process must never buffer unboundedly when arrivals
//! outpace the engine, and must never lose a flow *silently*. The
//! [`AdmissionGate`] wraps a bounded `sync_channel` to the engine
//! thread and makes the overflow behaviour an explicit, reported
//! decision:
//!
//! * [`AdmissionMode::Pause`] — backpressure: block the producer until
//!   the engine drains a slot, reporting `Paused`/`Resumed` around the
//!   stall. Lossless, so the admitted id sequence equals the offered
//!   sequence — this is what makes live runs schedule-identical to
//!   trace replay.
//! * [`AdmissionMode::Drop`] — load shedding: reject the arrival and
//!   report it (`Dropped` with the arrival's coordinates and the queue
//!   depth). The conservation law `arrived == admitted + dropped` is
//!   property-tested in `tests/admission.rs`.
//!
//! The gate is single-producer by construction (one client connection
//! at a time feeds a session), which keeps the accept/drop decision
//! sequence deterministic for a fixed offered sequence and capacity:
//! whether `try_send` succeeds depends only on the queue depth, which
//! depends only on how many arrivals the engine has pulled — and the
//! engine pulls exactly one ahead of its round loop.

use fss_engine::Arrival;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// What admission control does when the ingest queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Block the producer until a slot frees (lossless backpressure).
    Pause,
    /// Reject the arrival with an explicit `Dropped` report.
    Drop,
}

impl AdmissionMode {
    /// Wire/CLI name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            AdmissionMode::Pause => "pause",
            AdmissionMode::Drop => "drop",
        }
    }

    /// Parse a wire/CLI name.
    pub fn parse(s: &str) -> Result<AdmissionMode, String> {
        match s {
            "pause" => Ok(AdmissionMode::Pause),
            "drop" => Ok(AdmissionMode::Drop),
            other => Err(format!("unknown admission mode '{other}' (pause|drop)")),
        }
    }
}

/// The admission decision for one offered arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted without blocking; the flow got this dense id.
    Admitted {
        /// The admitted flow's id (position in the admitted sequence).
        id: u64,
    },
    /// Admitted after a `Pause`-mode stall (the `on_pause` callback
    /// fired before blocking).
    Resumed {
        /// The admitted flow's id.
        id: u64,
        /// Queue depth after the slot freed (for the `Resumed` report).
        queued: u64,
    },
    /// Rejected by `Drop`-mode admission; no id was assigned.
    Dropped {
        /// Queue depth at the moment of rejection.
        queued: u64,
    },
}

/// Bounded, accounted ingest gate in front of the engine's
/// [`fss_engine::ChannelSource`].
pub struct AdmissionGate {
    tx: Option<SyncSender<Arrival>>,
    mode: AdmissionMode,
    depth: Arc<AtomicU64>,
    ports: usize,
    next_id: u64,
    last_release: u64,
    /// Arrivals offered via [`AdmissionGate::offer`].
    pub arrived: u64,
    /// Arrivals admitted into the queue.
    pub admitted: u64,
    /// Arrivals rejected (`Drop` mode only).
    pub dropped: u64,
    /// Times the producer blocked (`Pause` mode only).
    pub pauses: u64,
}

impl AdmissionGate {
    /// Create a gate with the given queue capacity, returning the
    /// engine-side receiver and the shared depth counter (also exported
    /// as the `serve_queue_depth` gauge).
    pub fn new(
        ports: usize,
        capacity: usize,
        mode: AdmissionMode,
    ) -> (AdmissionGate, Receiver<Arrival>, Arc<AtomicU64>) {
        let depth = Arc::new(AtomicU64::new(0));
        let (gate, rx) = AdmissionGate::with_depth(ports, capacity, mode, Arc::clone(&depth));
        (gate, rx, depth)
    }

    /// Like [`AdmissionGate::new`] with a caller-owned depth counter
    /// (so a metrics registry created before the gate can export it).
    pub fn with_depth(
        ports: usize,
        capacity: usize,
        mode: AdmissionMode,
        depth: Arc<AtomicU64>,
    ) -> (AdmissionGate, Receiver<Arrival>) {
        assert!(ports > 0, "a switch needs at least one port");
        assert!(capacity > 0, "a zero-capacity gate admits nothing");
        let (tx, rx) = sync_channel(capacity);
        let gate = AdmissionGate {
            tx: Some(tx),
            mode,
            depth,
            ports,
            next_id: 0,
            last_release: 0,
            arrived: 0,
            admitted: 0,
            dropped: 0,
            pauses: 0,
        };
        (gate, rx)
    }

    /// Current ingest queue depth.
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Offer one arrival. Validates the protocol invariants (ports in
    /// range, release nondecreasing — `Err` is fatal to the session),
    /// then admits, blocks, or drops per the mode. In `Pause` mode
    /// `on_pause(depth)` fires once before blocking so the caller can
    /// emit the `Paused` report while the producer is still listening.
    pub fn offer(
        &mut self,
        release: u64,
        src: u32,
        dst: u32,
        mut on_pause: impl FnMut(u64),
    ) -> Result<Admission, String> {
        let ports = self.ports as u32;
        if src >= ports || dst >= ports {
            return Err(format!(
                "arrival ({src},{dst}) out of range for a {ports}-port switch"
            ));
        }
        if release < self.last_release {
            return Err(format!(
                "time ran backwards: release {release} after {}",
                self.last_release
            ));
        }
        self.last_release = release;
        self.arrived += 1;
        // The id is stamped into the arrival before the send (the
        // engine sees it), but only *committed* on admission — dropped
        // arrivals never consume an id, so admitted ids stay dense and
        // equal to trace sequence numbers in lossless runs.
        let arrival = Arrival {
            id: self.next_id,
            src,
            dst,
            release,
        };
        let tx = self.tx.as_ref().expect("offer after close");
        // Count the slot before sending so the consumer can never
        // observe depth 0 while holding an unseen arrival; undo on
        // rejection (fetch_sub, not store — the engine may have
        // decremented concurrently).
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(arrival) {
            Ok(()) => {
                let id = self.next_id;
                self.next_id += 1;
                self.admitted += 1;
                Ok(Admission::Admitted { id })
            }
            Err(TrySendError::Full(arrival)) => match self.mode {
                AdmissionMode::Drop => {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                    self.dropped += 1;
                    Ok(Admission::Dropped { queued: depth - 1 })
                }
                AdmissionMode::Pause => {
                    self.pauses += 1;
                    on_pause(depth - 1);
                    tx.send(arrival)
                        .map_err(|_| "engine stopped while ingest was paused".to_string())?;
                    let id = self.next_id;
                    self.next_id += 1;
                    self.admitted += 1;
                    Ok(Admission::Resumed {
                        id,
                        queued: self.depth(),
                    })
                }
            },
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err("engine stopped accepting arrivals".to_string())
            }
        }
    }

    /// Close the ingest side: drops the sender, which ends the engine's
    /// `ChannelSource` once the queue drains. Idempotent.
    pub fn close(&mut self) {
        self.tx = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in [AdmissionMode::Pause, AdmissionMode::Drop] {
            assert_eq!(AdmissionMode::parse(mode.name()), Ok(mode));
        }
        assert!(AdmissionMode::parse("yolo").is_err());
    }

    #[test]
    fn drop_mode_sheds_exactly_the_overflow_and_accounts_for_it() {
        let (mut gate, rx, depth) = AdmissionGate::new(4, 2, AdmissionMode::Drop);
        let mut outcomes = Vec::new();
        for i in 0..5 {
            outcomes.push(gate.offer(i, 0, 1, |_| panic!("drop mode never pauses")));
        }
        assert_eq!(outcomes[0], Ok(Admission::Admitted { id: 0 }));
        assert_eq!(outcomes[1], Ok(Admission::Admitted { id: 1 }));
        for outcome in &outcomes[2..] {
            assert!(matches!(outcome, Ok(Admission::Dropped { queued: 2 })));
        }
        assert_eq!((gate.arrived, gate.admitted, gate.dropped), (5, 2, 3));
        assert_eq!(gate.arrived, gate.admitted + gate.dropped, "conservation");
        assert_eq!(depth.load(Ordering::Relaxed), 2, "undone on rejection");
        // After a consumer drains one slot, admission resumes with the
        // next dense id (2 — dropped arrivals never consumed an id).
        rx.recv().unwrap();
        depth.fetch_sub(1, Ordering::Relaxed);
        assert_eq!(
            gate.offer(9, 3, 2, |_| ()),
            Ok(Admission::Admitted { id: 2 })
        );
    }

    #[test]
    fn pause_mode_blocks_until_the_consumer_drains() {
        let (mut gate, rx, depth) = AdmissionGate::new(2, 1, AdmissionMode::Pause);
        assert_eq!(
            gate.offer(0, 0, 1, |_| ()),
            Ok(Admission::Admitted { id: 0 })
        );
        // The queue is full; drain it from a delayed consumer thread so
        // the blocking send can complete.
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let got = rx.recv().unwrap();
            depth.fetch_sub(1, Ordering::Relaxed);
            (got, rx)
        });
        let mut paused_at = None;
        let outcome = gate.offer(1, 1, 0, |queued| paused_at = Some(queued));
        assert!(matches!(outcome, Ok(Admission::Resumed { id: 1, .. })));
        assert_eq!(paused_at, Some(1), "pause reported at full depth");
        assert_eq!(gate.pauses, 1);
        assert_eq!((gate.arrived, gate.admitted, gate.dropped), (2, 2, 0));
        let (first, _rx) = consumer.join().unwrap();
        assert_eq!(first.release, 0);
    }

    #[test]
    fn protocol_violations_are_fatal() {
        let (mut gate, _rx, _d) = AdmissionGate::new(4, 8, AdmissionMode::Pause);
        assert!(gate.offer(0, 4, 0, |_| ()).is_err(), "src out of range");
        assert!(gate.offer(0, 0, 9, |_| ()).is_err(), "dst out of range");
        gate.offer(5, 0, 1, |_| ()).unwrap();
        assert!(gate.offer(4, 0, 1, |_| ()).is_err(), "time ran backwards");
    }

    #[test]
    fn close_ends_the_stream_after_the_queue_drains() {
        let (mut gate, rx, _d) = AdmissionGate::new(2, 4, AdmissionMode::Pause);
        gate.offer(0, 0, 1, |_| ()).unwrap();
        gate.offer(1, 1, 0, |_| ()).unwrap();
        gate.close();
        gate.close(); // idempotent
        assert_eq!(rx.recv().unwrap().release, 0);
        assert_eq!(rx.recv().unwrap().release, 1);
        assert!(rx.recv().is_err(), "channel closed once drained");
    }
}
