//! The socket front-end: a blocking accept loop around one
//! [`ServeSession`], plus the `/metrics` HTTP listener.
//!
//! One session spans many client connections. The accept loop is
//! deliberately single-client (the ingest protocol is a single ordered
//! stream; admission is single-producer by design): when the current
//! client disconnects — EOF or a read/write error — the sink detaches
//! (terminating the departing stream with a `Detached` marker) and the
//! loop goes back to `accept`. Response lines produced in between
//! buffer in the sink and flush, in order, to the next client; the
//! engine keeps draining the admitted queue throughout. The session
//! ends when a client sends `{"kind":"Finish"}` (or on a fatal
//! protocol error).
//!
//! The metrics listener is a minimal HTTP/1.1 responder on its own
//! thread: any request gets a `200 OK` with the Prometheus rendering of
//! [`ServeMetrics`] — enough for `curl`/Prometheus scrapes without an
//! HTTP dependency.

use crate::metrics::ServeMetrics;
use crate::proto::ServeStats;
use crate::session::{serve_reader, Ingested, ServeOptions, ServeSession, Sink};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Run a session over stdin/stdout (`flowsched serve` with no
/// `--listen`): a dumped trace pipes straight in.
pub fn serve_stdio(opts: ServeOptions) -> Result<ServeStats, String> {
    let metrics = Arc::new(ServeMetrics::new());
    let stdin = std::io::stdin();
    serve_reader(
        opts,
        stdin.lock(),
        Sink::to_writer(std::io::stdout()),
        metrics,
    )
}

/// Serve one session on an already-bound listener, optionally exposing
/// metrics on a second listener. Returns the final accounting once a
/// client sends `Finish`.
pub fn run_server_on(
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    opts: ServeOptions,
) -> Result<ServeStats, String> {
    let metrics = Arc::new(ServeMetrics::new());
    let stop = Arc::new(AtomicBool::new(false));
    let scraper =
        metrics_listener.map(|l| spawn_metrics_server(l, Arc::clone(&metrics), Arc::clone(&stop)));
    let sink = Sink::detached();
    let mut session = ServeSession::new(opts, sink.clone(), Arc::clone(&metrics));

    let result = accept_until_finish(&listener, &mut session, &sink, &metrics);
    let stats = match result {
        Ok(()) => session.finish(),
        Err(e) => Err(e),
    };
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = scraper {
        let _ = h.join();
    }
    stats
}

fn accept_until_finish(
    listener: &TcpListener,
    session: &mut ServeSession,
    sink: &Sink,
    metrics: &ServeMetrics,
) -> Result<(), String> {
    let mut first = true;
    loop {
        let (stream, _addr) = listener
            .accept()
            .map_err(|e| format!("accept ingest client: {e}"))?;
        if !first {
            metrics.reconnects.inc();
        }
        first = false;
        let mut out = match stream.try_clone() {
            Ok(out) => out,
            Err(_) => continue, // client already gone; wait for the next
        };
        // The banner goes to the connection directly, *before* the sink
        // attaches: a reconnecting client must see `Started` first and
        // the buffered backlog after, never interleaved.
        if writeln!(out, "{}", session.banner().to_line())
            .and_then(|_| out.flush())
            .is_err()
        {
            continue;
        }
        sink.attach(Box::new(out));
        let mut reader = BufReader::new(stream);
        loop {
            match fss_dist::framing::next_line(&mut reader) {
                Ok(None) | Err(_) => {
                    // Client went away mid-session: detach and wait for
                    // a reconnect. The engine keeps draining.
                    sink.detach();
                    break;
                }
                Ok(Some(line)) => match session.ingest_line(&line)? {
                    Ingested::Continue => {}
                    Ingested::Finish => return Ok(()),
                },
            }
        }
    }
}

/// Spawn the `/metrics` responder thread on an already-bound listener.
/// It answers every HTTP request with the current Prometheus rendering
/// until `stop` is set.
pub fn spawn_metrics_server(
    listener: TcpListener,
    metrics: Arc<ServeMetrics>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    listener
        .set_nonblocking(true)
        .expect("metrics listener nonblocking");
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = answer_scrape(stream, &metrics);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    })
}

fn answer_scrape(mut stream: TcpStream, metrics: &ServeMetrics) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read the request head (scrapers send well under 1 KiB); only the
    // path matters for routing.
    let mut head = [0u8; 1024];
    let n = stream.read(&mut head).unwrap_or(0);
    let head = String::from_utf8_lossy(&head[..n]);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/metrics");
    let (status, ctype, body) = if path.starts_with("/trace") {
        match metrics.trace_json() {
            Some(Ok(json)) => ("200 OK", "application/json", json),
            Some(Err(e)) => (
                "500 Internal Server Error",
                "text/plain",
                format!("trace export failed: {e}\n"),
            ),
            None => (
                "404 Not Found",
                "text/plain",
                "tracing is off: start the session with --flight-trace\n".to_string(),
            ),
        }
    } else {
        ("200 OK", "text/plain; version=0.0.4", metrics.render())
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{ServeKind, ServeMsg};
    use std::io::BufRead;
    use std::net::Shutdown;

    fn read_msgs(reader: &mut impl BufRead) -> Vec<ServeMsg> {
        let mut out = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) if line.trim().is_empty() => continue,
                Ok(_) => out.push(ServeMsg::parse(line.trim()).expect("response parses")),
            }
        }
        out
    }

    #[test]
    fn a_socket_session_with_a_reconnect_delivers_every_line_once() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server =
            std::thread::spawn(move || run_server_on(listener, None, ServeOptions::default()));

        // Connection 1: header + two arrivals, then half-close and
        // read to EOF (the server detaches with a marker).
        let conn1 = TcpStream::connect(addr).unwrap();
        let mut w1 = conn1.try_clone().unwrap();
        w1.write_all(b"{\"ports\":4}\n").unwrap();
        w1.write_all(b"{\"release\":0,\"src\":0,\"dst\":1}\n")
            .unwrap();
        w1.write_all(b"{\"release\":0,\"src\":1,\"dst\":0}\n")
            .unwrap();
        w1.flush().unwrap();
        conn1.shutdown(Shutdown::Write).unwrap();
        let msgs1 = read_msgs(&mut BufReader::new(conn1));
        assert_eq!(msgs1[0].kind, ServeKind::Started);
        assert_eq!(msgs1.last().unwrap().kind, ServeKind::Detached);

        // Connection 2: two more arrivals and a clean finish.
        let conn2 = TcpStream::connect(addr).unwrap();
        let mut w2 = conn2.try_clone().unwrap();
        w2.write_all(b"{\"release\":1,\"src\":2,\"dst\":3}\n")
            .unwrap();
        w2.write_all(b"{\"release\":2,\"src\":3,\"dst\":2}\n")
            .unwrap();
        w2.write_all(b"{\"kind\":\"Finish\"}\n").unwrap();
        w2.flush().unwrap();
        let msgs2 = read_msgs(&mut BufReader::new(conn2));
        assert_eq!(msgs2[0].kind, ServeKind::Started, "fresh banner first");

        let stats = server.join().unwrap().expect("server session succeeds");
        assert_eq!(stats.arrived, 4);
        assert_eq!(stats.dispatched, 4);
        assert_eq!(stats.dropped, 0);

        // Every dispatch reaches exactly one of the two connections.
        let all: Vec<&ServeMsg> = msgs1
            .iter()
            .chain(msgs2.iter())
            .filter(|m| m.kind == ServeKind::Dispatch)
            .collect();
        assert_eq!(all.len(), 4);
        let stats_line = msgs2.last().unwrap();
        assert_eq!(stats_line.kind, ServeKind::Stats);
        assert_eq!(stats_line.dispatched, Some(4));
    }

    #[test]
    fn the_metrics_listener_answers_http_scrapes() {
        let metrics = Arc::new(ServeMetrics::new());
        metrics.ingested.add(5);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let h = spawn_metrics_server(listener, Arc::clone(&metrics), Arc::clone(&stop));

        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        conn.shutdown(Shutdown::Write).unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("fss_serve_flows_ingested_total{source=\"serve\"} 5"));

        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }
}
