//! The transport-free serve session: sink + admission gate + engine
//! thread.
//!
//! A [`ServeSession`] is the whole serve process minus I/O: feed it
//! ingest lines one at a time ([`ServeSession::ingest_line`]) and it
//! writes response lines to a [`Sink`]. The TCP server, the stdio mode,
//! and the in-process test harnesses are all thin loops around the same
//! session — tests drive byte buffers through [`serve_reader`] exactly
//! the way `fss-dist` scripts its worker over `SharedBuf` pipes, so the
//! differential and admission suites exercise the identical code path
//! the socket server runs.
//!
//! The engine runs on its own thread, consuming admitted arrivals from
//! a blocking [`ChannelSource`] through [`fss_sim::run_source_telemetry`]
//! — the same dispatch core as every batch run, which is what makes the
//! live schedule bit-identical to trace replay (see the crate docs).
//! Dispatch decisions are written to the sink from that thread; ingest
//! reports (`Paused`/`Resumed`/`Dropped`) from the caller's thread. The
//! sink serializes the interleaving.

use crate::admission::{Admission, AdmissionGate, AdmissionMode};
use crate::metrics::ServeMetrics;
use crate::proto::{parse_ingest, IngestLine, ServeKind, ServeMsg, ServeStats};
use fss_engine::{ChannelSource, EngineTelemetry, StreamStats};
use fss_flight::{
    stall_inject_from_env, FlightHandle, FlightRecorder, SpanKind, StallWatchdog, TraceSink,
    DEFAULT_SPOOL_MAX_EVENTS, DEFAULT_STALL_BUDGET,
};
use fss_sim::{FailurePlan, PolicyKind};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where response lines go. Cloneable handle over a shared state so the
/// ingest thread, the engine thread, and the server's accept loop all
/// write through one ordered stream.
///
/// While no writer is attached (startup, or after a client disconnect)
/// lines accumulate in an in-memory backlog; [`Sink::attach`] flushes
/// the backlog in order before going live, so a reconnecting client
/// sees every line exactly once, in order. A write error detaches the
/// sink (the line that failed is preserved at the head of the backlog).
#[derive(Clone)]
pub struct Sink(Arc<Mutex<SinkState>>);

struct SinkState {
    target: Option<Box<dyn Write + Send>>,
    backlog: Vec<String>,
}

impl Sink {
    /// A sink with no writer: lines buffer until [`Sink::attach`].
    pub fn detached() -> Sink {
        Sink(Arc::new(Mutex::new(SinkState {
            target: None,
            backlog: Vec::new(),
        })))
    }

    /// A sink writing to `w` from the start.
    pub fn to_writer(w: impl Write + Send + 'static) -> Sink {
        let sink = Sink::detached();
        sink.attach(Box::new(w));
        sink
    }

    /// A sink capturing into a shared byte buffer (test harnesses; the
    /// in-process analogue of the dist worker's `SharedBuf` pipes).
    pub fn capture() -> (Sink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let writer = CaptureWriter(Arc::clone(&buf));
        (Sink::to_writer(writer), buf)
    }

    /// Write one message as a JSONL line (buffered if detached).
    pub fn send(&self, msg: &ServeMsg) {
        self.write_line(msg.to_line());
    }

    fn write_line(&self, line: String) {
        let mut s = self.0.lock().expect("sink mutex poisoned");
        match &mut s.target {
            Some(w) => {
                if writeln!(w, "{line}").and_then(|_| w.flush()).is_err() {
                    s.target = None;
                    s.backlog.push(line);
                }
            }
            None => s.backlog.push(line),
        }
    }

    /// Attach a writer, flushing the backlog in order first. If the
    /// backlog flush fails the sink stays detached and the unwritten
    /// tail is preserved.
    pub fn attach(&self, mut w: Box<dyn Write + Send>) {
        let mut s = self.0.lock().expect("sink mutex poisoned");
        let backlog = std::mem::take(&mut s.backlog);
        for (i, line) in backlog.iter().enumerate() {
            if writeln!(w, "{line}").and_then(|_| w.flush()).is_err() {
                s.backlog = backlog[i..].to_vec();
                return;
            }
        }
        s.target = Some(w);
    }

    /// Detach the current writer (client went away), writing a
    /// `Detached` marker to it best-effort so the departing stream is
    /// terminated cleanly. Later lines buffer until the next attach.
    pub fn detach(&self) {
        let mut s = self.0.lock().expect("sink mutex poisoned");
        if let Some(mut w) = s.target.take() {
            let _ = writeln!(w, "{}", ServeMsg::detached().to_line());
            let _ = w.flush();
        }
    }

    /// Lines currently buffered (waiting for a writer).
    pub fn backlog_len(&self) -> usize {
        self.0.lock().expect("sink mutex poisoned").backlog.len()
    }
}

struct CaptureWriter(Arc<Mutex<Vec<u8>>>);

impl Write for CaptureWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("capture mutex poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Switch port count; `0` adopts the count from the ingest header.
    pub ports: usize,
    /// Scheduling policy driving dispatch.
    pub policy: PolicyKind,
    /// Optional injected port outages (the §6 failure model), applied
    /// by the same failure-aware drive batch runs use.
    pub failures: Option<FailurePlan>,
    /// Ingest queue capacity (admission bound).
    pub queue_cap: usize,
    /// What to do when the ingest queue is full.
    pub admission: AdmissionMode,
    /// Publish the engine's telemetry snapshot to the metrics registry
    /// every this many rounds (`0` = only at drain).
    pub publish_every: u64,
    /// Engine worker threads (`flowsched serve --cores N`): the session's
    /// engine thread drives the pipelined multi-core round loop. `0`/`1`
    /// keeps the sequential drive. Schedules are bit-identical at every
    /// value (the pipeline's determinism contract), so this is purely a
    /// throughput knob for heavy ingest streams.
    pub cores: usize,
    /// Record a span trace into this spool file (`flowsched serve
    /// --flight-trace OUT.json` spools to `OUT.json.spool.jsonl` and
    /// exports at finish). Tracing never changes schedules.
    pub flight_spool: Option<PathBuf>,
    /// Stall-watchdog budget (`--stall-budget-ms`); `None` uses
    /// [`DEFAULT_STALL_BUDGET`]. Only meaningful with a spool.
    pub stall_budget: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            ports: 0,
            policy: PolicyKind::MaxCard,
            failures: None,
            queue_cap: 1024,
            admission: AdmissionMode::Pause,
            publish_every: 64,
            cores: 1,
            flight_spool: None,
            stall_budget: None,
        }
    }
}

/// What [`ServeSession::ingest_line`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingested {
    /// Keep reading.
    Continue,
    /// A `Finish` control line arrived; call [`ServeSession::finish`].
    Finish,
}

struct Running {
    gate: AdmissionGate,
    engine: JoinHandle<StreamStats>,
    flight: Option<FlightRun>,
}

/// The tracing side of a running session: the sink (shared with the
/// metrics `/trace` slot) and the stall watchdog over the engine's
/// round-progress cell.
struct FlightRun {
    sink: TraceSink,
    watchdog: StallWatchdog,
}

/// One live serve session (see the module docs).
pub struct ServeSession {
    opts: ServeOptions,
    ports: usize,
    sink: Sink,
    metrics: Arc<ServeMetrics>,
    running: Option<Running>,
}

impl ServeSession {
    /// Create a session writing responses to `sink`.
    pub fn new(opts: ServeOptions, sink: Sink, metrics: Arc<ServeMetrics>) -> ServeSession {
        let ports = opts.ports;
        ServeSession {
            opts,
            ports,
            sink,
            metrics,
            running: None,
        }
    }

    /// The `Started` banner describing this session's configuration.
    pub fn banner(&self) -> ServeMsg {
        ServeMsg::started(
            self.ports,
            self.opts.policy,
            self.opts.queue_cap,
            self.opts.admission.name(),
        )
    }

    fn ensure_started(&mut self) -> Result<(), String> {
        if self.running.is_some() {
            return Ok(());
        }
        if self.ports == 0 {
            return Err(
                "no port count: send a {\"ports\":N} header or configure --ports".to_string(),
            );
        }
        let (gate, rx) = AdmissionGate::with_depth(
            self.ports,
            self.opts.queue_cap,
            self.opts.admission,
            Arc::clone(&self.metrics.queue_depth),
        );
        let source =
            ChannelSource::with_depth(self.ports, rx, Arc::clone(&self.metrics.queue_depth));
        let policy = self.opts.policy;
        let failures = self.opts.failures.clone();
        let publish_every = self.opts.publish_every;
        let cores = self.opts.cores;
        let sink = self.sink.clone();
        let metrics = Arc::clone(&self.metrics);

        // Span tracing: one recorder + spool per session, the engine
        // thread's handle rides inside its telemetry, and a watchdog
        // monitors the round-progress cell (a stall bumps the
        // `serve_stalls` counter and dumps a post-mortem).
        let mut flight = None;
        let mut flight_handle = FlightHandle::disabled();
        let mut session_span = 0u64;
        if let Some(spool) = &self.opts.flight_spool {
            let recorder = FlightRecorder::new();
            let trace_sink = TraceSink::create(&recorder, spool, DEFAULT_SPOOL_MAX_EVENTS)
                .map_err(|e| format!("create flight spool {}: {e}", spool.display()))?;
            let mut h = recorder.handle("engine");
            if let Some(inject) = stall_inject_from_env()? {
                h.set_stall_inject(inject);
            }
            session_span = recorder.alloc_span_id();
            h.set_session(session_span);
            flight_handle = h;
            let budget = self.opts.stall_budget.unwrap_or(DEFAULT_STALL_BUDGET);
            let stalls = Arc::clone(&self.metrics.stalls);
            let watchdog = StallWatchdog::spawn(&recorder, &trace_sink, budget, move |_| {
                stalls.inc();
            });
            if let Ok(mut slot) = self.metrics.flight.lock() {
                *slot = Some(trace_sink.clone());
            }
            flight = Some(FlightRun {
                sink: trace_sink,
                watchdog,
            });
        }

        let engine = std::thread::spawn(move || {
            let mut tele = EngineTelemetry::enabled().with_flight(flight_handle);
            tele.publish_every(publish_every, Arc::clone(&metrics.engine));
            let session_started = Instant::now();
            // The pipelined drive keeps its match stage (and thus the
            // publish cadence) on this engine thread, so live metrics
            // behave identically at every cores value.
            let stats = fss_sim::run_source_cores(
                Box::new(source),
                policy,
                failures.as_ref(),
                cores,
                &mut tele,
                |id, release, round| {
                    metrics.dispatched.inc();
                    sink.send(&ServeMsg::dispatch(id, release, round));
                },
            );
            // One umbrella span covering the whole drive (the id round
            // spans were parented under), then the final publish so a
            // post-drain scrape sees the full run.
            tele.flight().record_with(
                SpanKind::Session,
                session_span,
                0,
                session_started,
                Instant::now(),
            );
            if let Ok(mut slot) = metrics.engine.lock() {
                *slot = tele.snapshot();
            }
            stats
        });
        self.running = Some(Running {
            gate,
            engine,
            flight,
        });
        Ok(())
    }

    /// Feed one ingest line. `Err` is a fatal protocol error (already
    /// reported to the sink as an `Error` line).
    pub fn ingest_line(&mut self, line: &str) -> Result<Ingested, String> {
        let result = self.ingest_inner(line);
        if let Err(e) = &result {
            self.sink.send(&ServeMsg::error(e.clone()));
        }
        result
    }

    fn ingest_inner(&mut self, line: &str) -> Result<Ingested, String> {
        match parse_ingest(line)? {
            IngestLine::Header { ports } => {
                if self.running.is_some() {
                    return Err("unexpected header after arrivals started".to_string());
                }
                if ports == 0 {
                    return Err("a switch needs at least one port".to_string());
                }
                if self.opts.ports != 0 && self.opts.ports != ports {
                    return Err(format!(
                        "header says {ports} ports but the session is pinned to {}",
                        self.opts.ports
                    ));
                }
                self.ports = ports;
                Ok(Ingested::Continue)
            }
            IngestLine::Arrival { release, src, dst } => {
                self.ensure_started()?;
                self.metrics.ingested.inc();
                // Clone the handles up front: the pause callback runs
                // while the gate (inside `running`) is borrowed mutably.
                let sink = self.sink.clone();
                let metrics = Arc::clone(&self.metrics);
                let running = self.running.as_mut().expect("started above");
                let outcome = running.gate.offer(release, src, dst, |queued| {
                    metrics.pauses.inc();
                    sink.send(&ServeMsg::paused(queued));
                })?;
                match outcome {
                    Admission::Admitted { .. } => self.metrics.admitted.inc(),
                    Admission::Resumed { id, queued } => {
                        self.metrics.admitted.inc();
                        self.sink.send(&ServeMsg::resumed(id, queued));
                    }
                    Admission::Dropped { queued } => {
                        self.metrics.dropped.inc();
                        self.sink
                            .send(&ServeMsg::dropped(release, src, dst, queued));
                    }
                }
                Ok(Ingested::Continue)
            }
            IngestLine::Control(msg) => match msg.kind {
                ServeKind::Finish => Ok(Ingested::Finish),
                ServeKind::Metrics => {
                    self.sink.send(&ServeMsg::metrics(self.metrics.render()));
                    Ok(Ingested::Continue)
                }
                other => Err(format!("unexpected control line {other:?}")),
            },
        }
    }

    /// End the session: close the gate, let the engine drain, write the
    /// `Stats` line, and return the final accounting.
    pub fn finish(mut self) -> Result<ServeStats, String> {
        let stats = match self.running.take() {
            // No arrival ever started the engine: everything is zero.
            None => ServeStats::default(),
            Some(Running {
                mut gate,
                engine,
                flight,
            }) => {
                gate.close();
                let stream = engine
                    .join()
                    .map_err(|_| "engine thread panicked".to_string())?;
                if let Some(f) = flight {
                    f.watchdog.finish();
                    f.sink.finish();
                }
                ServeStats {
                    arrived: gate.arrived,
                    admitted: gate.admitted,
                    dropped: gate.dropped,
                    dispatched: stream.dispatched,
                    pauses: gate.pauses,
                    makespan: stream.makespan,
                    total_response: u64::try_from(stream.total_response).unwrap_or(u64::MAX),
                    max_response: stream.max_response,
                    peak_queue: stream.peak_queue as u64,
                }
            }
        };
        self.sink.send(&ServeMsg::stats(&stats));
        Ok(stats)
    }
}

/// Drive a whole session from a line-oriented reader: banner, ingest
/// loop (EOF counts as `Finish`), final stats. This is `flowsched
/// serve`'s stdio mode and the harness entry point for byte-buffer
/// tests; the TCP server runs the same session across connections.
pub fn serve_reader<R: BufRead>(
    opts: ServeOptions,
    mut input: R,
    sink: Sink,
    metrics: Arc<ServeMetrics>,
) -> Result<ServeStats, String> {
    let mut session = ServeSession::new(opts, sink.clone(), metrics);
    sink.send(&session.banner());
    loop {
        match fss_dist::framing::next_line(&mut input)? {
            None => break,
            Some(line) => match session.ingest_line(&line)? {
                Ingested::Continue => {}
                Ingested::Finish => break,
            },
        }
    }
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<ServeMsg> {
        String::from_utf8(buf.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(|l| ServeMsg::parse(l).expect("response lines parse"))
            .collect()
    }

    #[test]
    fn sink_buffers_while_detached_and_flushes_in_order_on_attach() {
        let sink = Sink::detached();
        sink.send(&ServeMsg::dispatch(0, 0, 1));
        sink.send(&ServeMsg::dispatch(1, 0, 2));
        assert_eq!(sink.backlog_len(), 2);
        let (attached, buf) = Sink::capture();
        drop(attached); // only needed the writer pattern; reuse below
        let buf2 = Arc::new(Mutex::new(Vec::new()));
        sink.attach(Box::new(CaptureWriter(Arc::clone(&buf2))));
        sink.send(&ServeMsg::dispatch(2, 1, 3));
        let got: Vec<u64> = String::from_utf8(buf2.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(|l| ServeMsg::parse(l).unwrap().id.unwrap())
            .collect();
        assert_eq!(got, vec![0, 1, 2], "backlog first, then live, in order");
        assert_eq!(sink.backlog_len(), 0);
        assert!(buf.lock().unwrap().is_empty());
    }

    #[test]
    fn detach_writes_a_detached_marker_and_rebuffers() {
        let (sink, buf) = Sink::capture();
        sink.send(&ServeMsg::dispatch(0, 0, 1));
        sink.detach();
        sink.send(&ServeMsg::dispatch(1, 0, 2)); // buffered
        let got = lines(&buf);
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].kind, ServeKind::Detached, "stream ends with marker");
        assert_eq!(sink.backlog_len(), 1);
    }

    #[test]
    fn a_full_session_over_byte_buffers_dispatches_every_flow() {
        let input = concat!(
            "{\"ports\":4}\n",
            "{\"release\":0,\"src\":0,\"dst\":1}\n",
            "{\"release\":0,\"src\":1,\"dst\":0}\n",
            "{\"release\":2,\"src\":2,\"dst\":3}\n",
            "{\"kind\":\"Metrics\"}\n",
            "{\"kind\":\"Finish\"}\n",
        );
        let (sink, buf) = Sink::capture();
        let metrics = Arc::new(ServeMetrics::new());
        let stats = serve_reader(
            ServeOptions::default(),
            Cursor::new(input),
            sink,
            Arc::clone(&metrics),
        )
        .expect("session runs");
        assert_eq!(stats.arrived, 3);
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.dispatched, 3);
        let msgs = lines(&buf);
        assert_eq!(msgs[0].kind, ServeKind::Started);
        assert_eq!(msgs[0].proto, Some(crate::SERVE_PROTO_VERSION));
        let dispatched: Vec<_> = msgs
            .iter()
            .filter(|m| m.kind == ServeKind::Dispatch)
            .collect();
        assert_eq!(dispatched.len(), 3);
        let metrics_reply = msgs
            .iter()
            .find(|m| m.kind == ServeKind::Metrics)
            .expect("metrics control line answered");
        assert!(metrics_reply
            .text
            .as_deref()
            .unwrap()
            .contains("fss_serve_flows_ingested_total"));
        assert_eq!(msgs.last().unwrap().kind, ServeKind::Stats);
        assert_eq!(msgs.last().unwrap().dispatched, Some(3));
        assert_eq!(metrics.dispatched.get(), 3);
    }

    #[test]
    fn a_traced_session_spools_spans_and_renders_chrome_json() {
        let dir = std::env::temp_dir().join(format!("fss_serve_flight_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spool = dir.join("session.spool.jsonl");
        let input = concat!(
            "{\"ports\":4}\n",
            "{\"release\":0,\"src\":0,\"dst\":1}\n",
            "{\"release\":1,\"src\":1,\"dst\":2}\n",
            "{\"release\":2,\"src\":2,\"dst\":3}\n",
            "{\"kind\":\"Finish\"}\n",
        );
        let opts = ServeOptions {
            flight_spool: Some(spool.clone()),
            ..ServeOptions::default()
        };
        let (sink, _buf) = Sink::capture();
        let metrics = Arc::new(ServeMetrics::new());
        let stats = serve_reader(opts, Cursor::new(input), sink, Arc::clone(&metrics)).unwrap();
        assert_eq!(stats.dispatched, 3);
        assert!(spool.exists(), "spool written at {}", spool.display());
        let json = metrics
            .trace_json()
            .expect("tracing was on")
            .expect("spool exports");
        let check = fss_flight::check_chrome(&json).expect("valid chrome trace");
        assert!(check.spans > 0, "traced session recorded spans");
        assert!(
            json.contains("match_repair") && json.contains("round"),
            "stage + round spans present; saw {:?}",
            check.names
        );
        assert_eq!(metrics.stalls.get(), 0, "healthy run never stalls");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eof_without_finish_still_drains_and_reports_stats() {
        let input = "{\"ports\":2}\n{\"release\":0,\"src\":0,\"dst\":1}\n";
        let (sink, buf) = Sink::capture();
        let stats = serve_reader(
            ServeOptions::default(),
            Cursor::new(input),
            sink,
            Arc::new(ServeMetrics::new()),
        )
        .unwrap();
        assert_eq!(stats.dispatched, 1);
        assert_eq!(lines(&buf).last().unwrap().kind, ServeKind::Stats);
    }

    #[test]
    fn conservation_holds_under_drop_mode_with_a_tiny_queue() {
        // With capacity 1 and a burst of same-release arrivals some may
        // be shed (how many depends on engine timing); the invariant
        // that cannot depend on timing is conservation: every offered
        // arrival is either dispatched or explicitly reported dropped.
        let mut input = String::from("{\"ports\":4}\n");
        for i in 0..64 {
            input.push_str(&format!(
                "{{\"release\":{},\"src\":{},\"dst\":{}}}\n",
                i / 8,
                i % 4,
                (i + 1) % 4
            ));
        }
        input.push_str("{\"kind\":\"Finish\"}\n");
        let opts = ServeOptions {
            queue_cap: 1,
            admission: AdmissionMode::Drop,
            ..ServeOptions::default()
        };
        let (sink, buf) = Sink::capture();
        let stats = serve_reader(
            opts,
            Cursor::new(input),
            sink,
            Arc::new(ServeMetrics::new()),
        )
        .unwrap();
        assert_eq!(stats.arrived, 64);
        assert_eq!(stats.arrived, stats.admitted + stats.dropped);
        assert_eq!(stats.admitted, stats.dispatched, "engine drained fully");
        let msgs = lines(&buf);
        let dropped_lines = msgs.iter().filter(|m| m.kind == ServeKind::Dropped).count();
        assert_eq!(dropped_lines as u64, stats.dropped, "no silent loss");
        let dispatch_lines = msgs
            .iter()
            .filter(|m| m.kind == ServeKind::Dispatch)
            .count();
        assert_eq!(dispatch_lines as u64, stats.dispatched);
    }

    #[test]
    fn protocol_errors_are_reported_and_fatal() {
        let input = "{\"ports\":2}\n{\"release\":0,\"src\":5,\"dst\":1}\n";
        let (sink, buf) = Sink::capture();
        let err = serve_reader(
            ServeOptions::default(),
            Cursor::new(input),
            sink,
            Arc::new(ServeMetrics::new()),
        )
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let msgs = lines(&buf);
        assert_eq!(msgs.last().unwrap().kind, ServeKind::Error);
    }

    #[test]
    fn arrivals_without_any_port_count_are_rejected() {
        let input = "{\"release\":0,\"src\":0,\"dst\":1}\n";
        let (sink, _buf) = Sink::capture();
        let err = serve_reader(
            ServeOptions::default(),
            Cursor::new(input),
            sink,
            Arc::new(ServeMetrics::new()),
        )
        .unwrap_err();
        assert!(err.contains("no port count"), "{err}");
    }
}
