//! The live serve-process metrics registry and its Prometheus
//! rendering.
//!
//! Two telemetry planes merge here. The **session plane** is a set of
//! pre-created lock-free cells ([`fss_telemetry::Registry`]) bumped
//! from the ingest loop and the engine's dispatch callback: flows
//! ingested/admitted/dropped/dispatched, pause and reconnect counts.
//! The **engine plane** is the round-loop's own
//! [`fss_telemetry::TelemetrySnapshot`] (stage timings, the
//! decision-latency histogram, round counters), published periodically
//! into a shared slot by `EngineTelemetry::publish_every` — the scrape
//! path never touches the hot loop.
//!
//! [`ServeMetrics::render`] merges both planes, adds the derived
//! gauges (`serve_queue_depth` from the admission gate's live counter,
//! `serve_flows_per_s`, decision p50/p99 copied out of the histogram),
//! and renders Prometheus text with a `source="serve"` label — the
//! same exposition `flowsched telemetry export` produces for batch
//! artifacts, so dashboards work on either.

use fss_flight::{read_spool, to_chrome, TraceSink};
use fss_telemetry::{to_prometheus, Counter, Registry, TelemetrySnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shared metric cells for one serve process (cheaply cloneable handles
/// inside an `Arc`; every field is lock-free except the engine slot).
pub struct ServeMetrics {
    registry: Registry,
    /// Ingest lines recognized as arrivals (before admission).
    pub ingested: Arc<Counter>,
    /// Arrivals admitted into the engine queue.
    pub admitted: Arc<Counter>,
    /// Arrivals shed by `Drop`-mode admission.
    pub dropped: Arc<Counter>,
    /// Dispatch decisions streamed out.
    pub dispatched: Arc<Counter>,
    /// Times `Pause`-mode admission blocked the producer.
    pub pauses: Arc<Counter>,
    /// Client connections accepted after the first (reattaches).
    pub reconnects: Arc<Counter>,
    /// Stalls the flight watchdog detected (round counter frozen past
    /// its budget; each one also dumped a post-mortem to the spool).
    pub stalls: Arc<Counter>,
    /// The session's live trace sink, when `--flight-trace` is on —
    /// the `/trace` endpoint drains and renders it.
    pub flight: Arc<Mutex<Option<TraceSink>>>,
    /// Live ingest queue depth, shared with the [`crate::AdmissionGate`].
    pub queue_depth: Arc<AtomicU64>,
    /// The engine round-loop's periodically-published snapshot
    /// (`EngineTelemetry::publish_every` writes it; the final snapshot
    /// is stored when the engine thread drains).
    pub engine: Arc<Mutex<TelemetrySnapshot>>,
    started: Instant,
}

impl ServeMetrics {
    /// A fresh registry with every cell pre-created (cell registration
    /// needs `&mut`; rendering is `&self` and thread-safe).
    pub fn new() -> ServeMetrics {
        let mut registry = Registry::new();
        let ingested = registry.counter("serve_flows_ingested");
        let admitted = registry.counter("serve_flows_admitted");
        let dropped = registry.counter("serve_flows_dropped");
        let dispatched = registry.counter("serve_flows_dispatched");
        let pauses = registry.counter("serve_ingest_pauses");
        let reconnects = registry.counter("serve_client_reconnects");
        let stalls = registry.counter("serve_stalls");
        ServeMetrics {
            registry,
            ingested,
            admitted,
            dropped,
            dispatched,
            pauses,
            reconnects,
            stalls,
            flight: Arc::new(Mutex::new(None)),
            queue_depth: Arc::new(AtomicU64::new(0)),
            engine: Arc::new(Mutex::new(TelemetrySnapshot::new())),
            started: Instant::now(),
        }
    }

    /// Render the merged live snapshot as Prometheus text (the
    /// `/metrics` endpoint body and the `Metrics` control-line reply).
    pub fn render(&self) -> String {
        let mut snap = self.registry.snapshot();
        if let Ok(engine) = self.engine.lock() {
            if !engine.is_empty() {
                snap.merge(&engine);
            }
        }
        snap.max_gauge(
            "serve_queue_depth",
            self.queue_depth.load(Ordering::Relaxed),
        );
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            let rate = self.dispatched.get() as f64 / elapsed;
            snap.max_gauge("serve_flows_per_s", rate as u64);
        }
        // Copy the percentile values out before mutating the snapshot
        // again (the histogram lookup borrows it).
        let latency = snap
            .histo("decision_latency_ns")
            .map(|h| (h.p50_ns, h.p99_ns));
        if let Some((p50, p99)) = latency {
            snap.max_gauge("serve_decision_p50_ns", p50);
            snap.max_gauge("serve_decision_p99_ns", p99);
        }
        to_prometheus(&snap, &[("source", "serve")])
    }

    /// Render the current span trace as Chrome Trace Format JSON (the
    /// `/trace` endpoint body): drains the rings into the spool, reads
    /// it back, and exports. `None` when the session runs untraced.
    pub fn trace_json(&self) -> Option<Result<String, String>> {
        let path = {
            let guard = self.flight.lock().ok()?;
            let sink = guard.as_ref()?;
            sink.drain();
            let w = sink.writer();
            let path = w.lock().ok()?.path().to_path_buf();
            path
        };
        Some(read_spool(&path).map(|spool| to_chrome(&spool)))
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_exposes_session_cells_and_derived_gauges() {
        let m = ServeMetrics::new();
        m.ingested.add(10);
        m.admitted.add(9);
        m.dropped.inc();
        m.dispatched.add(7);
        m.queue_depth.store(3, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("fss_serve_flows_ingested_total{source=\"serve\"} 10"));
        assert!(text.contains("fss_serve_flows_admitted_total{source=\"serve\"} 9"));
        assert!(text.contains("fss_serve_flows_dropped_total{source=\"serve\"} 1"));
        assert!(text.contains("fss_serve_flows_dispatched_total{source=\"serve\"} 7"));
        assert!(text.contains("fss_serve_queue_depth{source=\"serve\"} 3"));
        assert!(text.contains("fss_serve_flows_per_s{source=\"serve\"}"));
    }

    #[test]
    fn engine_snapshot_merges_into_the_scrape() {
        let m = ServeMetrics::new();
        {
            let mut slot = m.engine.lock().unwrap();
            slot.add_counter("flows_dispatched", 42);
            slot.add_stage_ns("dispatch", 1000);
        }
        let text = m.render();
        assert!(text.contains("fss_flows_dispatched_total{source=\"serve\"} 42"));
        assert!(text.contains("stage=\"dispatch\""));
    }

    #[test]
    fn decision_percentiles_surface_as_gauges_when_published() {
        use fss_telemetry::EngineTelemetry;
        let mut tele = EngineTelemetry::enabled();
        tele.decision(|| std::thread::sleep(std::time::Duration::from_micros(10)));
        tele.round();
        let m = ServeMetrics::new();
        *m.engine.lock().unwrap() = tele.snapshot();
        let text = m.render();
        assert!(text.contains("fss_serve_decision_p50_ns{source=\"serve\"}"));
        assert!(text.contains("fss_serve_decision_p99_ns{source=\"serve\"}"));
    }
}
