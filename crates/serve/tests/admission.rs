//! Property tests for admission control: randomized ingest bursts
//! against the bounded queue never lose a flow silently, and the
//! accept/drop decision sequence is a *deterministic* function of the
//! offered sequence — never of engine timing.
//!
//! The gate-level properties script the consumer explicitly (offer /
//! drain interleavings with no engine thread), so the decision sequence
//! is exactly reproducible and can be replayed twice. The session-level
//! property runs real bursts through a full `serve_reader` session,
//! where engine timing *does* vary, and checks the invariant that must
//! hold regardless: every arrival is dispatched or explicitly reported
//! dropped.

use fss_serve::{
    serve_reader, Admission, AdmissionGate, AdmissionMode, ServeKind, ServeMetrics, ServeMsg,
    ServeOptions, Sink,
};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One scripted ingest step: offer an arrival, or drain up to `k`
/// admitted arrivals from the engine side.
#[derive(Debug, Clone, Copy)]
enum Op {
    Offer { src: u32, dst: u32, bump: u64 },
    Drain { k: u8 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0u32..8, 0u32..8, 0u64..2).prop_map(|(src, dst, bump)| Op::Offer { src, dst, bump }),
        (1u8..4).prop_map(|k| Op::Drain { k }),
    ];
    proptest::collection::vec(op, 1..120)
}

/// Replay a script against a fresh Drop-mode gate with a hand-driven
/// consumer; returns the decision sequence and the final accounting.
fn replay(ports: usize, cap: usize, script: &[Op]) -> (Vec<Admission>, u64, u64, u64, u64) {
    let (mut gate, rx, depth) = AdmissionGate::new(ports, cap, AdmissionMode::Drop);
    let mut decisions = Vec::new();
    let mut release = 0u64;
    let mut drained = 0u64;
    for op in script {
        match *op {
            Op::Offer { src, dst, bump } => {
                release += bump;
                let d = gate
                    .offer(release, src % ports as u32, dst % ports as u32, |_| {
                        panic!("drop mode never pauses")
                    })
                    .expect("in-range offers never fail");
                decisions.push(d);
            }
            Op::Drain { k } => {
                for _ in 0..k {
                    if rx.try_recv().is_ok() {
                        depth.fetch_sub(1, Ordering::Relaxed);
                        drained += 1;
                    }
                }
            }
        }
    }
    (
        decisions,
        gate.arrived,
        gate.admitted,
        gate.dropped,
        drained,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn drop_mode_conserves_every_offered_arrival(
        script in ops(), ports in 2usize..8, cap in 1usize..8,
    ) {
        let (decisions, arrived, admitted, dropped, drained) =
            replay(ports, cap, &script);
        // Nothing silent: every offer produced an explicit decision.
        prop_assert_eq!(decisions.len() as u64, arrived);
        prop_assert_eq!(arrived, admitted + dropped, "conservation");
        let admitted_decisions = decisions.iter()
            .filter(|d| matches!(d, Admission::Admitted { .. } | Admission::Resumed { .. }))
            .count() as u64;
        let dropped_decisions = decisions.iter()
            .filter(|d| matches!(d, Admission::Dropped { .. }))
            .count() as u64;
        prop_assert_eq!(admitted_decisions, admitted);
        prop_assert_eq!(dropped_decisions, dropped);
        // The queue holds exactly the admitted-but-undrained remainder.
        prop_assert!(drained <= admitted);
        // Admitted ids are the dense sequence 0..admitted (drops never
        // consume an id) — the property that aligns live ids with trace
        // sequence numbers.
        let ids: Vec<u64> = decisions.iter().filter_map(|d| match d {
            Admission::Admitted { id } | Admission::Resumed { id, .. } => Some(*id),
            Admission::Dropped { .. } => None,
        }).collect();
        let expect: Vec<u64> = (0..admitted).collect();
        prop_assert_eq!(ids, expect);
    }

    #[test]
    fn the_decision_sequence_is_deterministic_for_a_fixed_script(
        script in ops(), ports in 2usize..8, cap in 1usize..8,
    ) {
        let (first, ..) = replay(ports, cap, &script);
        let (second, ..) = replay(ports, cap, &script);
        prop_assert_eq!(first, second, "same script, same decisions");
    }

    #[test]
    fn pause_mode_with_headroom_admits_everything_without_stalling(
        script in ops(), ports in 2usize..8,
    ) {
        // Capacity >= offer count: the gate must never block or shed.
        let offers = script.iter()
            .filter(|o| matches!(o, Op::Offer { .. })).count().max(1);
        let (mut gate, _rx, _depth) =
            AdmissionGate::new(ports, offers, AdmissionMode::Pause);
        let mut release = 0u64;
        for op in &script {
            if let Op::Offer { src, dst, bump } = *op {
                release += bump;
                let d = gate
                    .offer(release, src % ports as u32, dst % ports as u32,
                        |_| panic!("never full"))
                    .expect("in-range offers never fail");
                prop_assert!(matches!(d, Admission::Admitted { .. }));
            }
        }
        prop_assert_eq!(gate.arrived, gate.admitted);
        prop_assert_eq!(gate.dropped, 0u64);
        prop_assert_eq!(gate.pauses, 0u64);
    }
}

proptest! {
    // Full sessions spawn engine threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn bursts_through_a_full_session_never_lose_flows_silently(
        burst in proptest::collection::vec((0u32..6, 0u32..6), 1..200),
        cap in 1usize..4,
    ) {
        let mut input = String::from("{\"ports\":6}\n");
        for (i, (src, dst)) in burst.iter().enumerate() {
            input.push_str(&format!(
                "{{\"release\":{},\"src\":{src},\"dst\":{dst}}}\n", i as u64 / 16,
            ));
        }
        input.push_str("{\"kind\":\"Finish\"}\n");
        let opts = ServeOptions {
            queue_cap: cap,
            admission: AdmissionMode::Drop,
            ..ServeOptions::default()
        };
        let (sink, buf) = Sink::capture();
        let stats = serve_reader(
            opts, Cursor::new(input), sink, Arc::new(ServeMetrics::new()),
        ).expect("session runs");
        prop_assert_eq!(stats.arrived, burst.len() as u64);
        prop_assert_eq!(stats.arrived, stats.admitted + stats.dropped);
        prop_assert_eq!(stats.admitted, stats.dispatched, "engine drains fully");
        // Every shed arrival was reported on the wire.
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let mut dropped_lines = 0u64;
        let mut dispatch_lines = 0u64;
        for line in text.lines() {
            match ServeMsg::parse(line).expect("response parses").kind {
                ServeKind::Dropped => dropped_lines += 1,
                ServeKind::Dispatch => dispatch_lines += 1,
                _ => {}
            }
        }
        prop_assert_eq!(dropped_lines, stats.dropped, "no silent loss");
        prop_assert_eq!(dispatch_lines, stats.dispatched);
    }
}
