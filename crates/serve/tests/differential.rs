//! Differential suite: a serve session fed a dumped trace produces a
//! dispatch stream **bit-identical** to `run_scenario` on the same
//! `ScenarioSpec` — for all four §5 policies, with and without an
//! injected failure plan.
//!
//! This is the serve crate's contract in executable form. Both sides
//! reduce to the same dispatch core (`run_source_telemetry`); what this
//! suite actually pins down is everything serve adds around it — line
//! parsing, admission id assignment, the bounded queue, the blocking
//! channel hand-off, response serialization — preserving the schedule
//! byte for byte.

use fss_core::PortSide;
use fss_serve::{serve_reader, ServeKind, ServeMetrics, ServeMsg, ServeOptions, Sink};
use fss_sim::{run_scenario_with, ArrivalSpec, FailurePlan, Outage, PolicyKind, ScenarioSpec};
use std::io::Cursor;
use std::sync::Arc;

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::MaxCard,
    PolicyKind::MinRTime,
    PolicyKind::MaxWeight,
    PolicyKind::FifoGreedy,
];

fn poisson_spec(failures: Option<FailurePlan>) -> ScenarioSpec {
    ScenarioSpec {
        ports: 12,
        horizon: Some(80),
        arrivals: ArrivalSpec::Poisson { rate: 6.0 },
        failures,
        seed: 20_200_715, // the paper's SPAA 2020 presentation date
    }
}

fn outage_plan() -> FailurePlan {
    FailurePlan {
        outages: vec![
            Outage {
                side: PortSide::Input,
                port: 3,
                from: 10,
                to: 30,
            },
            Outage {
                side: PortSide::Output,
                port: 7,
                from: 25,
                to: 45,
            },
        ],
    }
}

/// The reference schedule: `run_scenario_with` over a trace-replay spec
/// pointing at the dumped trace file — the exact path a batch user
/// takes (`flowsched run --scenario`).
fn reference_lines(
    trace_path: &std::path::Path,
    policy: PolicyKind,
    failures: Option<FailurePlan>,
) -> (Vec<String>, fss_engine::StreamStats) {
    let spec = ScenarioSpec {
        ports: 0, // inherit from the trace header, like serve does
        horizon: None,
        arrivals: ArrivalSpec::Trace {
            path: trace_path.to_str().unwrap().to_string(),
            streaming: false,
        },
        failures,
        seed: 0,
    };
    let mut lines = Vec::new();
    let stats = run_scenario_with(&spec, policy, |id, release, round| {
        lines.push(ServeMsg::dispatch(id, release, round).to_line());
    })
    .expect("reference scenario runs");
    (lines, stats)
}

/// The live schedule: the same trace's JSONL lines fed through a full
/// serve session over byte buffers.
fn served_lines(
    trace_jsonl: &str,
    policy: PolicyKind,
    failures: Option<FailurePlan>,
) -> (Vec<String>, fss_serve::ServeStats) {
    let opts = ServeOptions {
        policy,
        failures,
        queue_cap: 32, // small enough to exercise pause-mode backpressure
        ..ServeOptions::default()
    };
    let (sink, buf) = Sink::capture();
    let stats = serve_reader(
        opts,
        Cursor::new(trace_jsonl.to_string()),
        sink,
        Arc::new(ServeMetrics::new()),
    )
    .expect("serve session runs");
    let lines = String::from_utf8(buf.lock().unwrap().clone())
        .unwrap()
        .lines()
        .filter(|l| ServeMsg::parse(l).expect("response lines parse").kind == ServeKind::Dispatch)
        .map(str::to_string)
        .collect();
    (lines, stats)
}

fn assert_parity(failures: Option<FailurePlan>) {
    let spec = poisson_spec(failures.clone());
    let trace = spec.dump_trace().expect("bounded spec dumps");
    assert!(trace.arrivals.len() > 200, "workload is non-trivial");
    let dir = std::env::temp_dir().join(format!(
        "fss-serve-differential-{}-{}",
        std::process::id(),
        failures.is_some()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");
    std::fs::write(&trace_path, trace.to_jsonl()).unwrap();

    for policy in POLICIES {
        let (want, ref_stats) = reference_lines(&trace_path, policy, failures.clone());
        let (got, stats) = served_lines(&trace.to_jsonl(), policy, failures.clone());
        assert_eq!(
            got.len(),
            want.len(),
            "{policy:?}: dispatch counts diverge (served {} vs reference {})",
            got.len(),
            want.len()
        );
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(g, w, "{policy:?}: schedules diverge at dispatch {i}");
        }
        // The aggregate statistics agree too.
        assert_eq!(stats.dispatched, ref_stats.dispatched, "{policy:?}");
        assert_eq!(stats.makespan, ref_stats.makespan, "{policy:?}");
        assert_eq!(
            u128::from(stats.total_response),
            ref_stats.total_response,
            "{policy:?}"
        );
        assert_eq!(stats.max_response, ref_stats.max_response, "{policy:?}");
        assert_eq!(stats.arrived, trace.arrivals.len() as u64, "{policy:?}");
        assert_eq!(stats.dropped, 0, "{policy:?}: pause mode is lossless");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_matches_run_scenario_for_all_policies() {
    assert_parity(None);
}

#[test]
fn serve_matches_run_scenario_under_an_injected_failure_plan() {
    assert_parity(Some(outage_plan()));
}
