//! Behavioral guarantees of the online policies beyond feasibility:
//! starvation-freedom of MinRTime, stability orderings, AMRT monotonicity.

use fss_core::prelude::*;
use fss_online::{
    amrt_schedule, run_policy, AgedMaxWeight, FifoGreedy, MaxCard, MaxWeight, MinRTime,
};
use proptest::prelude::*;

fn stream_instance() -> impl Strategy<Value = Instance> {
    // Sustained conflicting streams: at each round, a few flows into a
    // 3x3 switch.
    (1u64..=8, 1usize..=3).prop_flat_map(|(rounds, per_round)| {
        let flow = (0u32..3, 0u32..3);
        proptest::collection::vec(flow, (rounds * per_round as u64) as usize).prop_map(
            move |flows| {
                let mut b = InstanceBuilder::new(Switch::uniform(3, 3, 1));
                for (i, (s, d)) in flows.into_iter().enumerate() {
                    b.unit_flow(s, d, i as u64 / per_round as u64);
                }
                b.build().unwrap()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// MinRTime is starvation-free: since it serves oldest-first among
    /// conflicting flows, no flow waits longer than the number of flows
    /// released before or with it that share a port (loose but sound cap:
    /// total released before its completion).
    #[test]
    fn minrtime_no_starvation(inst in stream_instance()) {
        let sched = run_policy(&inst, &mut MinRTime::default());
        let m = fss_core::metrics::evaluate(&inst, &sched);
        prop_assert!(m.max_response <= inst.n() as u64 + 1,
            "a flow starved: max response {} with n = {}", m.max_response, inst.n());
    }

    /// The aged policy interpolates: with gamma = 0 it behaves like
    /// MaxWeight plus a cardinality bonus; with huge gamma like MinRTime.
    /// Both extremes must stay feasible and complete.
    #[test]
    fn aged_maxweight_interpolation_feasible(inst in stream_instance()) {
        for gamma in [0.0, 0.5, 4.0, 1e6] {
            let sched = run_policy(&inst, &mut AgedMaxWeight::new(gamma));
            prop_assert!(validate::check(&inst, &sched, &inst.switch).is_ok());
        }
    }

    /// AMRT's schedule never beats the best offline max response by more
    /// than the trivial floor of 1, and its port loads respect the doubled
    /// augmented budget.
    #[test]
    fn amrt_budgets(inst in stream_instance()) {
        let r = amrt_schedule(&inst);
        prop_assert!(r.metrics.max_response >= 1 || inst.n() == 0);
        prop_assert!(r.max_port_load <= 4, "2*(1 + 2*1 - 1) = 4 for unit instances");
        prop_assert!(r.metrics.max_response <= 2 * r.final_rho.max(1));
    }
}

#[test]
fn policies_identical_on_conflict_free_load() {
    // Disjoint port pairs: every reasonable policy schedules each flow on
    // release; all metrics coincide.
    let mut b = InstanceBuilder::new(Switch::uniform(4, 4, 1));
    for t in 0..5 {
        for p in 0..4 {
            b.unit_flow(p, p, t);
        }
    }
    let inst = b.build().unwrap();
    let expected = inst.n() as u64; // every response = 1
    for sched in [
        run_policy(&inst, &mut MaxCard::default()),
        run_policy(&inst, &mut MinRTime::default()),
        run_policy(&inst, &mut MaxWeight::default()),
        run_policy(&inst, &mut FifoGreedy::default()),
    ] {
        let m = fss_core::metrics::evaluate(&inst, &sched);
        assert_eq!(m.total_response, expected);
        assert_eq!(m.max_response, 1);
    }
}

#[test]
fn minrtime_dominates_on_the_aging_adversary() {
    // One hot input port receiving 2 flows/round: MinRTime's oldest-first
    // service must yield a strictly smaller max response than MaxCard's
    // arbitrary tie-breaking on at least this adversarial stream.
    let mut b = InstanceBuilder::new(Switch::uniform(2, 4, 1));
    for t in 0..12 {
        b.unit_flow(0, (t % 4) as u32, t);
        b.unit_flow(0, ((t + 1) % 4) as u32, t);
    }
    let inst = b.build().unwrap();
    let mr = fss_core::metrics::evaluate(&inst, &run_policy(&inst, &mut MinRTime::default()));
    let mc = fss_core::metrics::evaluate(&inst, &run_policy(&inst, &mut MaxCard::default()));
    assert!(
        mr.max_response <= mc.max_response,
        "MinRTime {} should not lose to MaxCard {} on max response here",
        mr.max_response,
        mc.max_response
    );
}
