//! Preemptive multi-round flows (extension).
//!
//! The paper's formal model schedules each flow in a single round; the
//! sized bars of its Figure 1, and the flow-time literature it builds on
//! (SRPT on machines), motivate the generalization where a flow of *size*
//! `s` needs `s` rounds of (possibly non-consecutive) service, one unit
//! per round, still subject to the per-round matching constraint. A flow
//! completes when its last unit is served; response = completion − release.
//!
//! This module provides the sized-flow model, the preemptive online
//! runner, and two classic policies:
//!
//! * [`SrptMatching`] — max-weight matching with weight inversely tied to
//!   remaining size (shortest-remaining-processing-time pressure; the
//!   rule that is optimal for `1|pmtn,r_i|ΣR_i`, cf. paper §1.2);
//! * [`OldestFirstMatching`] — max-weight matching by waiting time, the
//!   MinRTime analog for sized flows.

use fss_core::prelude::*;
use fss_matching::{max_weight_matching, BipartiteGraph};

/// A flow with a service requirement of `size` rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizedFlow {
    /// Input port.
    pub src: u32,
    /// Output port.
    pub dst: u32,
    /// Release round.
    pub release: u64,
    /// Number of service rounds required (`>= 1`).
    pub size: u32,
}

/// A sized-flow instance on a unit-capacity switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizedInstance {
    /// The switch (must be unit-capacity for the matching-based runner).
    pub switch: Switch,
    /// The sized flows.
    pub flows: Vec<SizedFlow>,
}

impl SizedInstance {
    /// Validate and build.
    pub fn new(switch: Switch, flows: Vec<SizedFlow>) -> Self {
        assert!(
            switch.is_unit_capacity(),
            "sized model requires unit capacities"
        );
        for (i, f) in flows.iter().enumerate() {
            assert!(f.size >= 1, "flow {i}: zero size");
            assert!((f.src as usize) < switch.num_inputs(), "flow {i}: bad src");
            assert!((f.dst as usize) < switch.num_outputs(), "flow {i}: bad dst");
        }
        SizedInstance { switch, flows }
    }

    /// Number of flows.
    pub fn n(&self) -> usize {
        self.flows.len()
    }

    /// Total service units.
    pub fn total_size(&self) -> u64 {
        self.flows.iter().map(|f| u64::from(f.size)).sum()
    }
}

/// What a preemptive policy sees: the released, uncompleted flows with
/// their remaining sizes.
#[derive(Debug)]
pub struct SizedQueue<'a> {
    /// Current round.
    pub round: u64,
    /// `(flow index, remaining units)` for each active flow.
    pub active: &'a [(usize, u32)],
    /// The instance (for ports/releases).
    pub inst: &'a SizedInstance,
}

/// A preemptive policy: pick a matching (by indices into `queue.active`).
pub trait PreemptivePolicy {
    /// Display name.
    fn name(&self) -> &'static str;
    /// Choose which active flows receive a unit of service this round.
    fn choose(&mut self, queue: &SizedQueue<'_>) -> Vec<usize>;
}

/// SRPT pressure: weight `= (max_size - remaining) * K + 1` so smaller
/// remaining sizes dominate, with a cardinality bonus.
#[derive(Debug, Default, Clone, Copy)]
pub struct SrptMatching;

impl PreemptivePolicy for SrptMatching {
    fn name(&self) -> &'static str {
        "SRPT"
    }

    fn choose(&mut self, queue: &SizedQueue<'_>) -> Vec<usize> {
        let max_rem = queue
            .active
            .iter()
            .map(|&(_, r)| u64::from(r))
            .max()
            .unwrap_or(0);
        let scale = (queue.active.len() + 1) as f64;
        let mut g = BipartiteGraph::new(
            queue.inst.switch.num_inputs(),
            queue.inst.switch.num_outputs(),
        );
        let mut weights = Vec::with_capacity(queue.active.len());
        for &(i, rem) in queue.active {
            let f = &queue.inst.flows[i];
            g.add_edge(f.src, f.dst);
            weights.push((max_rem + 1 - u64::from(rem)) as f64 * scale + 1.0);
        }
        max_weight_matching(&g, &weights)
    }
}

/// Oldest-first: weight = waiting time (MinRTime analog).
#[derive(Debug, Default, Clone, Copy)]
pub struct OldestFirstMatching;

impl PreemptivePolicy for OldestFirstMatching {
    fn name(&self) -> &'static str {
        "OldestFirst"
    }

    fn choose(&mut self, queue: &SizedQueue<'_>) -> Vec<usize> {
        let scale = (queue.active.len() + 1) as f64;
        let mut g = BipartiteGraph::new(
            queue.inst.switch.num_inputs(),
            queue.inst.switch.num_outputs(),
        );
        let mut weights = Vec::with_capacity(queue.active.len());
        for &(i, _) in queue.active {
            let f = &queue.inst.flows[i];
            g.add_edge(f.src, f.dst);
            weights.push((queue.round - f.release) as f64 * scale + 1.0);
        }
        max_weight_matching(&g, &weights)
    }
}

/// Completion rounds per flow from a preemptive run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreemptiveResult {
    /// Completion round (inclusive) per flow; response =
    /// `completion + 1 - release`.
    pub completion: Vec<u64>,
    /// Total response time.
    pub total_response: u64,
    /// Maximum response time.
    pub max_response: u64,
}

/// Run a preemptive policy to completion.
pub fn run_preemptive<P: PreemptivePolicy>(
    inst: &SizedInstance,
    policy: &mut P,
) -> PreemptiveResult {
    let n = inst.n();
    let mut completion = vec![0u64; n];
    if n == 0 {
        return PreemptiveResult {
            completion,
            total_response: 0,
            max_response: 0,
        };
    }
    let mut remaining: Vec<u32> = inst.flows.iter().map(|f| f.size).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (inst.flows[i].release, i));
    let mut next = 0usize;
    let mut active: Vec<(usize, u32)> = Vec::new();
    let mut t = inst.flows[order[0]].release;
    let mut live = 0usize;

    while live > 0 || next < n {
        while next < n && inst.flows[order[next]].release <= t {
            active.push((order[next], remaining[order[next]]));
            live += 1;
            next += 1;
        }
        if active.is_empty() {
            t = inst.flows[order[next]].release;
            continue;
        }
        let queue = SizedQueue {
            round: t,
            active: &active,
            inst,
        };
        let mut selection = policy.choose(&queue);
        selection.sort_unstable();
        selection.dedup();
        // Validate matching on ports.
        let mut used_in = vec![false; inst.switch.num_inputs()];
        let mut used_out = vec![false; inst.switch.num_outputs()];
        for &k in &selection {
            let (i, _) = active[k];
            let f = &inst.flows[i];
            assert!(
                !used_in[f.src as usize] && !used_out[f.dst as usize],
                "policy {} returned a non-matching",
                policy.name()
            );
            used_in[f.src as usize] = true;
            used_out[f.dst as usize] = true;
        }
        for &k in selection.iter().rev() {
            let (i, rem) = active[k];
            if rem == 1 {
                completion[i] = t;
                remaining[i] = 0;
                active.swap_remove(k);
                live -= 1;
            } else {
                active[k] = (i, rem - 1);
                remaining[i] = rem - 1;
            }
        }
        t += 1;
    }
    let mut total = 0u64;
    let mut max = 0u64;
    for (i, f) in inst.flows.iter().enumerate() {
        let rho = completion[i] + 1 - f.release;
        total += rho;
        max = max.max(rho);
    }
    PreemptiveResult {
        completion,
        total_response: total,
        max_response: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(flows: Vec<SizedFlow>, m: usize) -> SizedInstance {
        SizedInstance::new(Switch::uniform(m, m, 1), flows)
    }

    fn f(src: u32, dst: u32, release: u64, size: u32) -> SizedFlow {
        SizedFlow {
            src,
            dst,
            release,
            size,
        }
    }

    #[test]
    fn single_sized_flow_takes_size_rounds() {
        let i = inst(vec![f(0, 0, 2, 3)], 1);
        let r = run_preemptive(&i, &mut SrptMatching);
        assert_eq!(r.completion[0], 4); // rounds 2, 3, 4
        assert_eq!(r.total_response, 3);
    }

    #[test]
    fn srpt_prefers_short_remaining() {
        // Long flow released first; short flow arrives later on the same
        // ports: SRPT must preempt and finish the short one quickly.
        let i = inst(vec![f(0, 0, 0, 5), f(0, 0, 1, 1)], 1);
        let r = run_preemptive(&i, &mut SrptMatching);
        // Short flow served at round 1 (response 1); long pays the delay.
        assert_eq!(r.completion[1], 1);
        assert_eq!(r.completion[0], 5); // 5 units at 0, 2, 3, 4, 5
        assert_eq!(r.total_response, 6 + 1);
    }

    #[test]
    fn oldest_first_refuses_to_preempt_forever() {
        let i = inst(vec![f(0, 0, 0, 5), f(0, 0, 1, 1)], 1);
        let r = run_preemptive(&i, &mut OldestFirstMatching);
        // Oldest-first keeps serving the long flow; the short one waits.
        assert_eq!(r.completion[0], 4);
        assert_eq!(r.completion[1], 5);
    }

    #[test]
    fn srpt_beats_oldest_on_total_response_for_mixed_sizes() {
        let i = inst(
            vec![f(0, 0, 0, 6), f(0, 1, 1, 1), f(0, 0, 2, 1), f(0, 1, 3, 2)],
            2,
        );
        let srpt = run_preemptive(&i, &mut SrptMatching);
        let old = run_preemptive(&i, &mut OldestFirstMatching);
        assert!(
            srpt.total_response <= old.total_response,
            "SRPT {} vs OldestFirst {}",
            srpt.total_response,
            old.total_response
        );
        // And the classic trade-off: oldest-first controls the maximum.
        assert!(old.max_response <= srpt.max_response);
    }

    #[test]
    fn parallel_ports_serve_concurrently() {
        let i = inst(vec![f(0, 0, 0, 2), f(1, 1, 0, 2)], 2);
        let r = run_preemptive(&i, &mut SrptMatching);
        assert_eq!(r.max_response, 2, "disjoint flows proceed in parallel");
    }

    #[test]
    fn unit_sizes_recover_the_base_model() {
        use fss_core::gen::{random_instance, GenParams};
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(52);
        let base = random_instance(&mut rng, &GenParams::unit(3, 12, 4));
        let sized = SizedInstance::new(
            base.switch.clone(),
            base.flows
                .iter()
                .map(|f| SizedFlow {
                    src: f.src,
                    dst: f.dst,
                    release: f.release,
                    size: 1,
                })
                .collect(),
        );
        let r = run_preemptive(&sized, &mut OldestFirstMatching);
        let plain = crate::run_policy(&base, &mut crate::MinRTime::default());
        let pm = fss_core::metrics::evaluate(&base, &plain);
        // Same policy logic on unit sizes: identical totals.
        assert_eq!(r.total_response, pm.total_response);
    }

    #[test]
    #[should_panic(expected = "zero size")]
    fn zero_size_rejected() {
        let _ = inst(vec![f(0, 0, 0, 0)], 1);
    }

    #[test]
    fn empty_instance() {
        let i = inst(vec![], 2);
        let r = run_preemptive(&i, &mut SrptMatching);
        assert_eq!(r.total_response, 0);
    }
}
