//! The online execution loop: rounds advance, released flows join the open
//! queue, the policy extracts a matching, matched flows depart.
//!
//! This mirrors the paper's simulator skeleton (§5.2.1): `G_t` consists of
//! flows released at time `t` plus those remaining from previous steps; any
//! heuristic plugs in to extract `M_t ⊆ E(G_t)`.
//!
//! This loop is the **reference implementation**: simple, obviously
//! faithful to the paper, and the differential-testing baseline for the
//! event-driven engine (`fss-engine`), which reproduces its schedules
//! round-for-round while running the hot cells much faster. New callers
//! should prefer `fss_engine::run_policy` / `fss_engine::run_builtin`.

use fss_core::prelude::*;

use crate::policy::{OnlinePolicy, QueueState, WaitingFlow};

/// Run `policy` over `inst` online. Requires unit capacities and unit
/// demands (the paper's experimental setting). Returns the resulting
/// feasible schedule.
///
/// Panics if the policy ever returns a non-matching or an out-of-range
/// selection — policies are trusted components and such a return is a bug.
pub fn run_policy<P: OnlinePolicy>(inst: &Instance, policy: &mut P) -> Schedule {
    assert!(
        inst.switch.is_unit_capacity(),
        "online runner requires unit capacities"
    );
    assert!(inst.is_unit_demand(), "online runner requires unit demands");
    let n = inst.n();
    let mut rounds = vec![0u64; n];
    if n == 0 {
        return Schedule::from_rounds(rounds);
    }

    // Arrival order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (inst.flows[i].release, i));
    let mut next = 0usize;
    let mut waiting: Vec<WaitingFlow> = Vec::new();
    let mut t = inst.flows[order[0]].release;
    let mut remaining = n;

    while remaining > 0 {
        while next < n && inst.flows[order[next]].release <= t {
            let i = order[next];
            let f = &inst.flows[i];
            waiting.push(WaitingFlow {
                id: FlowId(i as u32),
                src: f.src,
                dst: f.dst,
                release: f.release,
            });
            next += 1;
        }
        if waiting.is_empty() {
            t = inst.flows[order[next]].release;
            continue;
        }
        let state = QueueState {
            round: t,
            waiting: &waiting,
            m_in: inst.switch.num_inputs(),
            m_out: inst.switch.num_outputs(),
        };
        let mut selection = policy.choose(&state);
        selection.sort_unstable();
        selection.dedup();
        // Validate: indices in range and vertex-disjoint.
        let mut used_in = vec![false; inst.switch.num_inputs()];
        let mut used_out = vec![false; inst.switch.num_outputs()];
        for &k in &selection {
            let w = &waiting[k];
            assert!(
                !used_in[w.src as usize] && !used_out[w.dst as usize],
                "policy {} returned a non-matching at round {t}",
                policy.name()
            );
            used_in[w.src as usize] = true;
            used_out[w.dst as usize] = true;
            rounds[w.id.idx()] = t;
        }
        remaining -= selection.len();
        // Remove scheduled flows (descending index order keeps swaps valid).
        for &k in selection.iter().rev() {
            waiting.swap_remove(k);
        }
        t += 1;
    }
    let sched = Schedule::from_rounds(rounds);
    debug_assert!(validate::check(inst, &sched, &inst.switch).is_ok());
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FifoGreedy, MaxCard, MaxWeight, MinRTime};
    use fss_core::gen::{random_instance, GenParams};
    use rand::{rngs::SmallRng, SeedableRng};

    fn all_policies_run(inst: &Instance) {
        let s1 = run_policy(inst, &mut MaxCard::default());
        let s2 = run_policy(inst, &mut MinRTime::default());
        let s3 = run_policy(inst, &mut MaxWeight::default());
        let s4 = run_policy(inst, &mut FifoGreedy::default());
        for s in [&s1, &s2, &s3, &s4] {
            validate::check(inst, s, &inst.switch).unwrap();
        }
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(Switch::uniform(2, 2, 1))
            .build()
            .unwrap();
        assert!(run_policy(&inst, &mut MaxCard::default()).is_empty());
    }

    #[test]
    fn all_policies_produce_feasible_schedules() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..6 {
            let p = GenParams::unit(5, 30, 8);
            let inst = random_instance(&mut rng, &p);
            all_policies_run(&inst);
        }
    }

    #[test]
    fn policies_never_idle_a_schedulable_flow_forever() {
        // Work conservation modulo matchings: makespan is finite and below
        // the serialization bound.
        let mut rng = SmallRng::seed_from_u64(14);
        let p = GenParams::unit(4, 25, 5);
        let inst = random_instance(&mut rng, &p);
        for s in [
            run_policy(&inst, &mut MaxCard::default()),
            run_policy(&inst, &mut MinRTime::default()),
            run_policy(&inst, &mut MaxWeight::default()),
            run_policy(&inst, &mut FifoGreedy::default()),
        ] {
            assert!(s.makespan() <= inst.max_release() + inst.n() as u64);
        }
    }

    #[test]
    fn maxcard_beats_fifo_on_average_sometimes() {
        // The classic augmenting-path situation: FIFO blocks, MaxCard
        // doesn't. Flows: (0,0) old, (0,1), (1,0) — FIFO takes (0,0) first
        // and serializes the rest.
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 1, 0);
        b.unit_flow(1, 0, 0);
        let inst = b.build().unwrap();
        let mc = fss_core::metrics::evaluate(&inst, &run_policy(&inst, &mut MaxCard::default()));
        let ff = fss_core::metrics::evaluate(&inst, &run_policy(&inst, &mut FifoGreedy::default()));
        assert!(mc.total_response <= ff.total_response);
    }

    #[test]
    fn minrtime_bounds_aging_on_adversarial_stream() {
        // Stream of conflicting pairs: MinRTime must not starve anyone.
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        for t in 0..10 {
            b.unit_flow(0, 0, t);
            b.unit_flow(0, 1, t);
        }
        let inst = b.build().unwrap();
        let s = run_policy(&inst, &mut MinRTime::default());
        let m = fss_core::metrics::evaluate(&inst, &s);
        // Input port 0 receives 2 flows per round: queue grows linearly,
        // but MinRTime serves oldest-first so max response stays ~n.
        assert!(m.max_response <= 2 * 10 + 1);
    }

    #[test]
    #[should_panic(expected = "unit capacities")]
    fn non_unit_capacity_rejected() {
        let inst = InstanceBuilder::new(Switch::uniform(2, 2, 2))
            .build()
            .unwrap();
        let _ = run_policy(&inst, &mut MaxCard::default());
    }
}
