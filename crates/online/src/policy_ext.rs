//! Extension policies beyond the paper's trio.
//!
//! The paper (§6) calls for a more thorough investigation of online
//! algorithms; these are natural candidates used in the extended
//! experiments and ablations:
//!
//! * [`RandomMatching`] — a uniformly-ordered greedy maximal matching:
//!   the no-intelligence baseline separating "any maximal matching" from
//!   the optimized heuristics;
//! * [`AgedMaxWeight`] — MaxWeight with an age term,
//!   `weight = queue(src) + queue(dst) + γ·(t − r_e)`: interpolates between
//!   MaxWeight (γ = 0) and MinRTime-like aging (γ large), a knob for the
//!   avg-vs-max trade-off the paper's conclusion discusses.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fss_matching::{greedy_matching, max_weight_matching, BipartiteGraph};

use crate::policy::{OnlinePolicy, QueueState};
use crate::weighted::{choose_with, choose_with_into, WeightModel, WeightedSelector, GAMMA_DENOM};

/// Greedy maximal matching over a uniformly shuffled edge order.
/// Deterministic per (seed, round): reproducible experiments.
#[derive(Debug, Clone)]
pub struct RandomMatching {
    seed: u64,
    g: BipartiteGraph,
    order: Vec<usize>,
}

impl RandomMatching {
    /// Create with an explicit seed.
    pub fn new(seed: u64) -> Self {
        RandomMatching {
            seed,
            g: BipartiteGraph::default(),
            order: Vec::new(),
        }
    }
}

impl Default for RandomMatching {
    fn default() -> Self {
        RandomMatching::new(0x5eed)
    }
}

impl OnlinePolicy for RandomMatching {
    fn name(&self) -> &'static str {
        "RandomMatching"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        state.graph_into(&mut self.g);
        self.order.clear();
        self.order.extend(0..state.waiting.len());
        let mut rng = SmallRng::seed_from_u64(self.seed ^ state.round.rotate_left(13));
        self.order.shuffle(&mut rng);
        greedy_matching(&self.g, &self.order)
    }
}

/// MaxWeight with linear aging: `weight = queues + gamma * age + 1`.
///
/// Incremental (see [`crate::weighted`]): the aging coefficient is
/// quantized to `1/1024`ths so the weights stay integral, which is what
/// lets the matching carry over from round to round exactly.
/// [`BatchAgedMaxWeight`] keeps the original float-weighted from-scratch
/// solve as the differential oracle.
#[derive(Debug, Clone)]
pub struct AgedMaxWeight {
    gamma: f64,
    sel: Option<WeightedSelector>,
}

impl AgedMaxWeight {
    /// Create with an aging coefficient (quantized to `1/1024`ths).
    pub fn new(gamma: f64) -> Self {
        assert!(gamma >= 0.0, "aging coefficient must be nonnegative");
        AgedMaxWeight { gamma, sel: None }
    }

    /// The aging coefficient γ (as configured, before quantization).
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    fn gamma_q(&self) -> i64 {
        (self.gamma * GAMMA_DENOM as f64).round() as i64
    }
}

impl Default for AgedMaxWeight {
    fn default() -> Self {
        AgedMaxWeight::new(1.0)
    }
}

impl OnlinePolicy for AgedMaxWeight {
    fn name(&self) -> &'static str {
        "AgedMaxWeight"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        let model = WeightModel::AgedMaxWeight {
            gamma_q: self.gamma_q(),
        };
        choose_with(&mut self.sel, model, state)
    }

    fn choose_into(&mut self, state: &QueueState<'_>, out: &mut Vec<usize>) {
        let model = WeightModel::AgedMaxWeight {
            gamma_q: self.gamma_q(),
        };
        choose_with_into(&mut self.sel, model, state, out);
    }
}

/// The original from-scratch AgedMaxWeight: float weights
/// `queues + γ·age + 1`, dense Hungarian per round. Differential oracle
/// for [`AgedMaxWeight`].
#[derive(Debug, Clone)]
pub struct BatchAgedMaxWeight {
    /// Aging coefficient γ (0 recovers MaxWeight behavior, with the +1
    /// cardinality bonus).
    pub gamma: f64,
    g: BipartiteGraph,
    weights: Vec<f64>,
    in_q: Vec<u32>,
    out_q: Vec<u32>,
}

impl BatchAgedMaxWeight {
    /// Create with an aging coefficient.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma >= 0.0, "aging coefficient must be nonnegative");
        BatchAgedMaxWeight {
            gamma,
            g: BipartiteGraph::default(),
            weights: Vec::new(),
            in_q: Vec::new(),
            out_q: Vec::new(),
        }
    }
}

impl OnlinePolicy for BatchAgedMaxWeight {
    fn name(&self) -> &'static str {
        "AgedMaxWeight"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        state.graph_into(&mut self.g);
        state.in_queue_sizes_into(&mut self.in_q);
        state.out_queue_sizes_into(&mut self.out_q);
        self.weights.clear();
        self.weights.extend(state.waiting.iter().map(|w| {
            f64::from(self.in_q[w.src as usize] + self.out_q[w.dst as usize])
                + self.gamma * (state.round - w.release) as f64
                + 1.0
        }));
        max_weight_matching(&self.g, &self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WaitingFlow;
    use crate::runner::run_policy;
    use fss_core::gen::{random_instance, GenParams};
    use fss_core::prelude::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn random_matching_is_reproducible() {
        let w = [
            WaitingFlow {
                id: FlowId(0),
                src: 0,
                dst: 0,
                release: 0,
            },
            WaitingFlow {
                id: FlowId(1),
                src: 0,
                dst: 1,
                release: 0,
            },
            WaitingFlow {
                id: FlowId(2),
                src: 1,
                dst: 0,
                release: 0,
            },
        ];
        let state = QueueState {
            round: 3,
            waiting: &w,
            m_in: 2,
            m_out: 2,
        };
        let a = RandomMatching::new(1).choose(&state);
        let b = RandomMatching::new(1).choose(&state);
        assert_eq!(a, b);
    }

    #[test]
    fn both_extensions_produce_feasible_schedules() {
        let mut rng = SmallRng::seed_from_u64(6);
        let inst = random_instance(&mut rng, &GenParams::unit(4, 25, 6));
        for sched in [
            run_policy(&inst, &mut RandomMatching::default()),
            run_policy(&inst, &mut AgedMaxWeight::default()),
            run_policy(&inst, &mut AgedMaxWeight::new(0.0)),
            run_policy(&inst, &mut AgedMaxWeight::new(100.0)),
            run_policy(&inst, &mut BatchAgedMaxWeight::new(0.7)),
        ] {
            validate::check(&inst, &sched, &inst.switch).unwrap();
        }
    }

    #[test]
    fn high_gamma_mimics_minrtime_priority() {
        // Old conflicting flow must win under strong aging.
        let w = [
            WaitingFlow {
                id: FlowId(0),
                src: 0,
                dst: 0,
                release: 9,
            },
            WaitingFlow {
                id: FlowId(1),
                src: 0,
                dst: 0,
                release: 1,
            },
        ];
        let state = QueueState {
            round: 10,
            waiting: &w,
            m_in: 1,
            m_out: 1,
        };
        let sel = AgedMaxWeight::new(1000.0).choose(&state);
        assert_eq!(sel, vec![1]);
        let sel = BatchAgedMaxWeight::new(1000.0).choose(&state);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_gamma_rejected() {
        let _ = AgedMaxWeight::new(-1.0);
    }
}
