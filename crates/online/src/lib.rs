//! # fss-online — online flow scheduling
//!
//! The paper's §5: the scheduler learns about a flow only at its release
//! round and must pick, each round, a set of waiting flows forming a
//! feasible round (a matching, for unit capacities).
//!
//! * [`policy`] — the [`policy::OnlinePolicy`] trait and the paper's three
//!   heuristics (§5.2): **MaxCard** (maximum-cardinality matching),
//!   **MinRTime** (maximum-weight matching, weight = waiting time) and
//!   **MaxWeight** (maximum-weight matching, weight = endpoint queue
//!   sizes), plus a FIFO-greedy baseline;
//! * [`weighted`] — the incremental weighted-matching core behind
//!   MinRTime/MaxWeight: persistent dual potentials carried across
//!   rounds, re-solving only the rows dirtied by arrivals and dispatches
//!   (the from-scratch originals survive as `Batch*` oracle policies);
//! * [`runner`] — the round-by-round online execution loop shared by the
//!   test-suite and the simulator crate;
//! * [`amrt`] — the batching algorithm of Lemma 5.3: a constant-competitive
//!   algorithm for maximum response time under constant-factor resource
//!   augmentation, built on the offline Theorem 3 solver.

pub mod amrt;
pub mod policy;
pub mod policy_ext;
pub mod preemptive;
pub mod runner;
pub mod weighted;

pub use amrt::{amrt_schedule, AmrtResult};
pub use policy::{
    BatchMaxWeight, BatchMinRTime, FifoGreedy, MaxCard, MaxWeight, MinRTime, OnlinePolicy,
    QueueState, WaitingFlow,
};
pub use policy_ext::{AgedMaxWeight, BatchAgedMaxWeight, RandomMatching};
pub use preemptive::{
    run_preemptive, OldestFirstMatching, PreemptivePolicy, SizedFlow, SizedInstance, SrptMatching,
};
pub use runner::run_policy;
pub use weighted::{WeightModel, WeightedCore, WeightedSelector};
