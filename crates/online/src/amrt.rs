//! AMRT — the online batching algorithm of Lemma 5.3 (Figure 5).
//!
//! Maintain a guessed maximum response time ρ. At each batch boundary,
//! check whether the flows that arrived during the previous window can be
//! scheduled within the next ρ rounds (time-constrained LP feasibility);
//! if so, commit the Theorem 3 offline schedule for them starting now; if
//! not, increase ρ and extend the window. Because consecutive committed
//! batches overlap at most pairwise, the port load at any round is at most
//! twice the offline bound, i.e. `2·(c_p + 2·dmax − 1)`, and every flow
//! completes within `2ρ_final` of its release.

use fss_core::prelude::*;
use fss_offline::mrt::{round_time_constrained, RoundingEngine, TimeConstrained};

/// Result of [`amrt_schedule`].
#[derive(Debug, Clone)]
pub struct AmrtResult {
    /// The committed schedule (feasible on the doubled augmented switch).
    pub schedule: Schedule,
    /// Final value of the guessed response bound ρ.
    pub final_rho: u64,
    /// Measured additive-then-doubled capacity actually used: the smallest
    /// per-port load bound of the schedule. Lemma 5.3 promises
    /// `<= 2·(c_p + 2·dmax − 1)`.
    pub max_port_load: u64,
    /// Metrics of the schedule (max response `<= 2·final_rho`).
    pub metrics: ResponseMetrics,
}

/// Run AMRT over `inst` (flows revealed at their release rounds).
pub fn amrt_schedule(inst: &Instance) -> AmrtResult {
    let n = inst.n();
    if n == 0 {
        let schedule = Schedule::from_rounds(vec![]);
        let metrics = fss_core::metrics::evaluate(inst, &schedule);
        return AmrtResult {
            schedule,
            final_rho: 0,
            max_port_load: 0,
            metrics,
        };
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (inst.flows[i].release, i));

    let mut rho = 1u64;
    let mut rounds = vec![0u64; n];
    let mut next = 0usize; // next arrival in `order`
    let mut batch_start = inst.flows[order[0]].release;

    while next < n {
        let checkpoint = batch_start + rho;
        // Flows released in [batch_start, checkpoint).
        let mut batch: Vec<usize> = Vec::new();
        let mut k = next;
        while k < n && inst.flows[order[k]].release < checkpoint {
            batch.push(order[k]);
            k += 1;
        }
        if batch.is_empty() {
            // Idle window: jump to the next arrival.
            batch_start = inst.flows[order[k]].release;
            continue;
        }
        // Can the batch run within [checkpoint, checkpoint + rho)?
        let sub = sub_instance(inst, &batch);
        let tc_active: Vec<Vec<u64>> = batch
            .iter()
            .map(|_| (checkpoint..checkpoint + rho).collect())
            .collect();
        let tc = TimeConstrained::from_active_sets(&sub, tc_active);
        match round_time_constrained(&tc, RoundingEngine::IterativeRelaxation)
            .expect("LP solver within budget")
        {
            Some(res) => {
                for (bi, &i) in batch.iter().enumerate() {
                    rounds[i] = res.schedule.round_of(FlowId(bi as u32));
                }
                next = k;
                batch_start = checkpoint;
            }
            None => {
                // Guess too small: grow and retry with a wider window.
                rho += 1;
            }
        }
    }

    let schedule = Schedule::from_rounds(rounds);
    let metrics = fss_core::metrics::evaluate(inst, &schedule);
    let max_port_load = measure_max_port_load(inst, &schedule);
    AmrtResult {
        schedule,
        final_rho: rho,
        max_port_load,
        metrics,
    }
}

/// Project `inst` onto a subset of flows (releases kept; the active sets
/// supplied by the caller carry the batching semantics).
fn sub_instance(inst: &Instance, members: &[usize]) -> Instance {
    let mut b = InstanceBuilder::new(inst.switch.clone());
    for &i in members {
        b.push(inst.flows[i]);
    }
    b.build().expect("projection of a valid instance is valid")
}

/// Largest per-(port, round) demand load of the schedule.
fn measure_max_port_load(inst: &Instance, sched: &Schedule) -> u64 {
    use std::collections::HashMap;
    let mut in_load: HashMap<(u32, u64), u64> = HashMap::new();
    let mut out_load: HashMap<(u32, u64), u64> = HashMap::new();
    for (f, &t) in inst.flows.iter().zip(sched.rounds()) {
        *in_load.entry((f.src, t)).or_insert(0) += u64::from(f.demand);
        *out_load.entry((f.dst, t)).or_insert(0) += u64::from(f.demand);
    }
    in_load
        .values()
        .chain(out_load.values())
        .copied()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_core::gen::{random_instance, GenParams};
    use fss_offline::mrt::{solve_mrt, RoundingEngine};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        let r = amrt_schedule(&inst);
        assert_eq!(r.final_rho, 0);
    }

    #[test]
    fn single_flow_runs_within_two_rho() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        b.unit_flow(0, 0, 0);
        let inst = b.build().unwrap();
        let r = amrt_schedule(&inst);
        assert!(r.metrics.max_response <= 2 * r.final_rho);
    }

    #[test]
    fn response_bound_holds_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(64);
        for _ in 0..8 {
            let p = GenParams::unit(4, 20, 6);
            let inst = random_instance(&mut rng, &p);
            let r = amrt_schedule(&inst);
            assert!(
                r.metrics.max_response <= 2 * r.final_rho,
                "max response {} > 2 rho = {}",
                r.metrics.max_response,
                2 * r.final_rho
            );
            // Lemma 5.3 capacity bound: 2 * (c_p + 2 dmax - 1) = 2 * (1+1).
            assert!(
                r.max_port_load <= 2 * (1 + 2 * u64::from(inst.dmax()) - 1),
                "port load {} exceeds the doubled augmented bound",
                r.max_port_load
            );
        }
    }

    #[test]
    fn amrt_competitive_with_offline_optimum() {
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..5 {
            let p = GenParams::unit(3, 12, 5);
            let inst = random_instance(&mut rng, &p);
            let online = amrt_schedule(&inst);
            let offline = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
            // Empirical competitiveness: record and bound loosely (the
            // lemma's constant, with batching slack, stays below 4x + 2).
            assert!(
                online.metrics.max_response <= 4 * offline.rho_star + 2,
                "online {} vs offline rho* {}",
                online.metrics.max_response,
                offline.rho_star
            );
        }
    }

    #[test]
    fn bursty_arrivals_grow_rho() {
        // 6 conflicting flows at once: rho must grow past 1.
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        for _ in 0..6 {
            b.unit_flow(0, 0, 0);
        }
        let inst = b.build().unwrap();
        let r = amrt_schedule(&inst);
        assert!(r.final_rho >= 3, "six serialized flows need rho >= 6/2");
        assert!(r.metrics.max_response <= 2 * r.final_rho);
        validate::check(
            &inst,
            &r.schedule,
            &inst.switch.augmented((r.max_port_load.max(1) - 1) as u32),
        )
        .unwrap();
    }
}
