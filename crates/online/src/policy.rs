//! Online policies: the paper's heuristics (§5.2) behind a common trait.

use fss_core::FlowId;
use fss_matching::{
    greedy_matching, max_cardinality_matching, max_weight_matching, BipartiteGraph,
};

/// A flow currently waiting in the open queue `E(G_t)`.
#[derive(Debug, Clone, Copy)]
pub struct WaitingFlow {
    /// Identity within the instance.
    pub id: FlowId,
    /// Input port.
    pub src: u32,
    /// Output port.
    pub dst: u32,
    /// Release round (for age-based weights).
    pub release: u64,
}

/// What a policy sees each round: the waiting graph `G_t` (paper §5.2.1).
#[derive(Debug)]
pub struct QueueState<'a> {
    /// Current round `t`.
    pub round: u64,
    /// All released, unscheduled flows.
    pub waiting: &'a [WaitingFlow],
    /// Number of input ports.
    pub m_in: usize,
    /// Number of output ports.
    pub m_out: usize,
}

impl QueueState<'_> {
    /// Build the bipartite waiting graph; edge `k` is `waiting[k]`.
    pub fn graph(&self) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(self.m_in, self.m_out);
        for w in self.waiting {
            g.add_edge(w.src, w.dst);
        }
        g
    }

    /// Queue length per input port (released-but-unscheduled flows).
    pub fn in_queue_sizes(&self) -> Vec<u32> {
        let mut q = vec![0u32; self.m_in];
        for w in self.waiting {
            q[w.src as usize] += 1;
        }
        q
    }

    /// Queue length per output port.
    pub fn out_queue_sizes(&self) -> Vec<u32> {
        let mut q = vec![0u32; self.m_out];
        for w in self.waiting {
            q[w.dst as usize] += 1;
        }
        q
    }
}

/// An online scheduling policy: each round, pick indices into
/// `state.waiting` that form a matching (unit capacities — the paper's
/// experimental setting). The runner validates the selection.
pub trait OnlinePolicy {
    /// Short display name (used in experiment tables).
    fn name(&self) -> &'static str;
    /// Select the flows to run this round.
    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize>;
}

/// **MaxCard**: a maximum-cardinality matching of `G_t` — keeps the most
/// ports busy; the paper expects it to do well on average response time
/// but poorly on maximum response time.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxCard;

impl OnlinePolicy for MaxCard {
    fn name(&self) -> &'static str {
        "MaxCard"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        max_cardinality_matching(&state.graph())
    }
}

/// **MinRTime**: maximum-weight matching with weight `t − r_e` (the time
/// the flow has waited) — prioritizes old flows, good for maximum response
/// time. Among equal-weight matchings, a uniform `+1` bonus per edge makes
/// the policy prefer higher cardinality (the paper leaves the tie-break
/// unspecified).
#[derive(Debug, Default, Clone, Copy)]
pub struct MinRTime;

impl OnlinePolicy for MinRTime {
    fn name(&self) -> &'static str {
        "MinRTime"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        let g = state.graph();
        let scale = (state.waiting.len() + 1) as f64;
        let weights: Vec<f64> = state
            .waiting
            .iter()
            .map(|w| (state.round - w.release) as f64 * scale + 1.0)
            .collect();
        max_weight_matching(&g, &weights)
    }
}

/// **MaxWeight**: maximum-weight matching with weight = sum of queue sizes
/// at the edge's endpoints — drains the most congested ports; the paper's
/// compromise pick for keeping both objectives low.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxWeight;

impl OnlinePolicy for MaxWeight {
    fn name(&self) -> &'static str {
        "MaxWeight"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        let g = state.graph();
        let in_q = state.in_queue_sizes();
        let out_q = state.out_queue_sizes();
        let weights: Vec<f64> = state
            .waiting
            .iter()
            .map(|w| f64::from(in_q[w.src as usize] + out_q[w.dst as usize]))
            .collect();
        max_weight_matching(&g, &weights)
    }
}

/// FIFO-greedy baseline: scan waiting flows oldest first and take each one
/// whose ports are still free. Not one of the paper's trio; serves as a
/// cheap sanity floor in the experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoGreedy;

impl OnlinePolicy for FifoGreedy {
    fn name(&self) -> &'static str {
        "FifoGreedy"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        let g = state.graph();
        let mut order: Vec<usize> = (0..state.waiting.len()).collect();
        order.sort_by_key(|&k| (state.waiting[k].release, state.waiting[k].id));
        greedy_matching(&g, &order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(waiting: &[WaitingFlow], round: u64) -> QueueState<'_> {
        QueueState {
            round,
            waiting,
            m_in: 3,
            m_out: 3,
        }
    }

    fn wf(id: u32, src: u32, dst: u32, release: u64) -> WaitingFlow {
        WaitingFlow {
            id: FlowId(id),
            src,
            dst,
            release,
        }
    }

    #[test]
    fn maxcard_takes_maximum_matching() {
        let w = [wf(0, 0, 0, 0), wf(1, 0, 1, 0), wf(2, 1, 0, 0)];
        let sel = MaxCard.choose(&state(&w, 0));
        assert_eq!(sel.len(), 2); // (0,1)+(1,0) or equivalent
    }

    #[test]
    fn minrtime_prefers_older_flows() {
        // Two conflicting flows; the older one must win.
        let w = [wf(0, 0, 0, 5), wf(1, 0, 0, 1)];
        let sel = MinRTime.choose(&state(&w, 6));
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn minrtime_cardinality_tiebreak() {
        // All flows same age: the +1 bonus must still produce a maximum
        // matching rather than an empty one (all weights zero otherwise).
        let w = [wf(0, 0, 0, 3), wf(1, 1, 1, 3), wf(2, 2, 2, 3)];
        let sel = MinRTime.choose(&state(&w, 3));
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn maxweight_targets_congested_ports() {
        // Input 0 has three queued flows; an edge touching it carries more
        // weight than the isolated pair (1,1).
        let w = [
            wf(0, 0, 0, 0),
            wf(1, 0, 1, 0),
            wf(2, 0, 2, 0),
            wf(3, 1, 1, 0),
        ];
        let sel = MaxWeight.choose(&state(&w, 0));
        // Some edge at input 0 must be selected.
        assert!(sel.iter().any(|&k| w[k].src == 0));
        // And the matching is maximal enough to include (1,1) too.
        assert!(sel.iter().any(|&k| w[k].src == 1));
    }

    #[test]
    fn fifo_scans_by_release() {
        let w = [wf(0, 0, 0, 4), wf(1, 0, 0, 2)];
        let sel = FifoGreedy.choose(&state(&w, 5));
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn queue_sizes_count_incident_flows() {
        let w = [wf(0, 0, 1, 0), wf(1, 0, 2, 0), wf(2, 1, 1, 0)];
        let s = state(&w, 0);
        assert_eq!(s.in_queue_sizes(), vec![2, 1, 0]);
        assert_eq!(s.out_queue_sizes(), vec![0, 2, 1]);
    }
}
