//! Online policies: the paper's heuristics (§5.2) behind a common trait.
//!
//! The weighted heuristics (**MinRTime**, **MaxWeight**) run on the
//! incremental matching core of [`crate::weighted`]: they carry dual
//! potentials and the assignment across rounds and repair only what the
//! round's arrivals/dispatches dirtied, instead of re-solving a dense
//! Hungarian from scratch. The original from-scratch implementations are
//! kept as [`BatchMinRTime`] / [`BatchMaxWeight`] — the differential-test
//! oracles and benchmark baselines.

use fss_core::FlowId;
use fss_matching::{
    greedy_matching_into, max_cardinality_matching, max_cardinality_matching_into,
    max_weight_matching, BipartiteGraph,
};

use crate::weighted::{choose_with, choose_with_into, WeightModel, WeightedSelector};

/// A flow currently waiting in the open queue `E(G_t)`.
#[derive(Debug, Clone, Copy)]
pub struct WaitingFlow {
    /// Identity within the instance.
    pub id: FlowId,
    /// Input port.
    pub src: u32,
    /// Output port.
    pub dst: u32,
    /// Release round (for age-based weights).
    pub release: u64,
}

/// What a policy sees each round: the waiting graph `G_t` (paper §5.2.1).
#[derive(Debug)]
pub struct QueueState<'a> {
    /// Current round `t`.
    pub round: u64,
    /// All released, unscheduled flows.
    pub waiting: &'a [WaitingFlow],
    /// Number of input ports.
    pub m_in: usize,
    /// Number of output ports.
    pub m_out: usize,
}

impl QueueState<'_> {
    /// Build the bipartite waiting graph; edge `k` is `waiting[k]`.
    pub fn graph(&self) -> BipartiteGraph {
        let mut g = BipartiteGraph::default();
        self.graph_into(&mut g);
        g
    }

    /// Fill `g` with the waiting graph, reusing its edge storage (the
    /// allocation-free form of [`QueueState::graph`] for per-round use).
    pub fn graph_into(&self, g: &mut BipartiteGraph) {
        g.reset(self.m_in, self.m_out);
        for w in self.waiting {
            g.add_edge(w.src, w.dst);
        }
    }

    /// Queue length per input port (released-but-unscheduled flows).
    pub fn in_queue_sizes(&self) -> Vec<u32> {
        let mut q = Vec::new();
        self.in_queue_sizes_into(&mut q);
        q
    }

    /// Fill `q` with the per-input-port queue lengths, reusing storage.
    pub fn in_queue_sizes_into(&self, q: &mut Vec<u32>) {
        q.clear();
        q.resize(self.m_in, 0);
        for w in self.waiting {
            q[w.src as usize] += 1;
        }
    }

    /// Queue length per output port.
    pub fn out_queue_sizes(&self) -> Vec<u32> {
        let mut q = Vec::new();
        self.out_queue_sizes_into(&mut q);
        q
    }

    /// Fill `q` with the per-output-port queue lengths, reusing storage.
    pub fn out_queue_sizes_into(&self, q: &mut Vec<u32>) {
        q.clear();
        q.resize(self.m_out, 0);
        for w in self.waiting {
            q[w.dst as usize] += 1;
        }
    }
}

/// An online scheduling policy: each round, pick indices into
/// `state.waiting` that form a matching (unit capacities — the paper's
/// experimental setting). The runner validates the selection.
///
/// Policies may be stateful (the incremental ones are): the round loops
/// call `choose` with nondecreasing rounds over one instance's lifetime,
/// and a policy value should not be reused across instances unless its
/// implementation documents that it re-synchronizes (the weighted
/// policies here reset themselves when the clock moves backwards).
pub trait OnlinePolicy {
    /// Short display name (used in experiment tables).
    fn name(&self) -> &'static str;
    /// Select the flows to run this round.
    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize>;
    /// [`choose`](OnlinePolicy::choose) writing the selection into a
    /// caller-owned buffer (cleared first). The engine's round loops call
    /// this form so a persistent scratch buffer absorbs the per-round
    /// allocation; the default delegates to `choose`, and the built-in
    /// policies override it with allocation-free implementations.
    fn choose_into(&mut self, state: &QueueState<'_>, out: &mut Vec<usize>) {
        *out = self.choose(state);
    }
}

/// **MaxCard**: a maximum-cardinality matching of `G_t` — keeps the most
/// ports busy; the paper expects it to do well on average response time
/// but poorly on maximum response time.
#[derive(Debug, Default, Clone)]
pub struct MaxCard {
    g: BipartiteGraph,
}

impl OnlinePolicy for MaxCard {
    fn name(&self) -> &'static str {
        "MaxCard"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        state.graph_into(&mut self.g);
        max_cardinality_matching(&self.g)
    }

    fn choose_into(&mut self, state: &QueueState<'_>, out: &mut Vec<usize>) {
        state.graph_into(&mut self.g);
        max_cardinality_matching_into(&self.g, out);
    }
}

/// **MinRTime**: maximum-weight matching with weight `t − r_e` (the time
/// the flow has waited) — prioritizes old flows, good for maximum response
/// time. Among equal-weight matchings, a uniform `+1` bonus per edge makes
/// the policy prefer higher cardinality (the paper leaves the tie-break
/// unspecified).
///
/// Incremental: maintains the weighted matching across rounds (see
/// [`crate::weighted`]); [`BatchMinRTime`] is the from-scratch original.
#[derive(Debug, Default, Clone)]
pub struct MinRTime {
    sel: Option<WeightedSelector>,
}

impl OnlinePolicy for MinRTime {
    fn name(&self) -> &'static str {
        "MinRTime"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        choose_with(&mut self.sel, WeightModel::MinRTime, state)
    }

    fn choose_into(&mut self, state: &QueueState<'_>, out: &mut Vec<usize>) {
        choose_with_into(&mut self.sel, WeightModel::MinRTime, state, out);
    }
}

/// **MaxWeight**: maximum-weight matching with weight = sum of queue sizes
/// at the edge's endpoints — drains the most congested ports; the paper's
/// compromise pick for keeping both objectives low.
///
/// Incremental: maintains the weighted matching across rounds (see
/// [`crate::weighted`]); [`BatchMaxWeight`] is the from-scratch original.
#[derive(Debug, Default, Clone)]
pub struct MaxWeight {
    sel: Option<WeightedSelector>,
}

impl OnlinePolicy for MaxWeight {
    fn name(&self) -> &'static str {
        "MaxWeight"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        choose_with(&mut self.sel, WeightModel::MaxWeight, state)
    }

    fn choose_into(&mut self, state: &QueueState<'_>, out: &mut Vec<usize>) {
        choose_with_into(&mut self.sel, WeightModel::MaxWeight, state, out);
    }
}

/// FIFO-greedy baseline: scan waiting flows oldest first and take each one
/// whose ports are still free. Not one of the paper's trio; serves as a
/// cheap sanity floor in the experiments.
#[derive(Debug, Default, Clone)]
pub struct FifoGreedy {
    g: BipartiteGraph,
    order: Vec<usize>,
}

impl OnlinePolicy for FifoGreedy {
    fn name(&self) -> &'static str {
        "FifoGreedy"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        let mut out = Vec::new();
        self.choose_into(state, &mut out);
        out
    }

    fn choose_into(&mut self, state: &QueueState<'_>, out: &mut Vec<usize>) {
        state.graph_into(&mut self.g);
        self.order.clear();
        self.order.extend(0..state.waiting.len());
        self.order
            .sort_by_key(|&k| (state.waiting[k].release, state.waiting[k].id));
        greedy_matching_into(&self.g, &self.order, out);
    }
}

/// The original from-scratch MinRTime: rebuilds the waiting multigraph
/// and solves a dense `O(k^3)` Hungarian every round, with the legacy
/// round-varying weight scale `|waiting| + 1`.
///
/// Kept as the differential-test oracle and benchmark baseline for the
/// incremental [`MinRTime`]; prefer the incremental policy everywhere
/// else.
#[derive(Debug, Default, Clone)]
pub struct BatchMinRTime {
    g: BipartiteGraph,
    weights: Vec<f64>,
}

impl OnlinePolicy for BatchMinRTime {
    fn name(&self) -> &'static str {
        "MinRTime"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        state.graph_into(&mut self.g);
        let scale = (state.waiting.len() + 1) as f64;
        self.weights.clear();
        self.weights.extend(
            state
                .waiting
                .iter()
                .map(|w| (state.round - w.release) as f64 * scale + 1.0),
        );
        max_weight_matching(&self.g, &self.weights)
    }
}

/// The original from-scratch MaxWeight (see [`BatchMinRTime`]).
#[derive(Debug, Default, Clone)]
pub struct BatchMaxWeight {
    g: BipartiteGraph,
    weights: Vec<f64>,
    in_q: Vec<u32>,
    out_q: Vec<u32>,
}

impl OnlinePolicy for BatchMaxWeight {
    fn name(&self) -> &'static str {
        "MaxWeight"
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        state.graph_into(&mut self.g);
        state.in_queue_sizes_into(&mut self.in_q);
        state.out_queue_sizes_into(&mut self.out_q);
        self.weights.clear();
        self.weights.extend(
            state
                .waiting
                .iter()
                .map(|w| f64::from(self.in_q[w.src as usize] + self.out_q[w.dst as usize])),
        );
        max_weight_matching(&self.g, &self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(waiting: &[WaitingFlow], round: u64) -> QueueState<'_> {
        QueueState {
            round,
            waiting,
            m_in: 3,
            m_out: 3,
        }
    }

    fn wf(id: u32, src: u32, dst: u32, release: u64) -> WaitingFlow {
        WaitingFlow {
            id: FlowId(id),
            src,
            dst,
            release,
        }
    }

    #[test]
    fn maxcard_takes_maximum_matching() {
        let w = [wf(0, 0, 0, 0), wf(1, 0, 1, 0), wf(2, 1, 0, 0)];
        let sel = MaxCard::default().choose(&state(&w, 0));
        assert_eq!(sel.len(), 2); // (0,1)+(1,0) or equivalent
    }

    #[test]
    fn minrtime_prefers_older_flows() {
        // Two conflicting flows; the older one must win — in both the
        // incremental policy and the batch oracle.
        let w = [wf(0, 0, 0, 5), wf(1, 0, 0, 1)];
        assert_eq!(MinRTime::default().choose(&state(&w, 6)), vec![1]);
        assert_eq!(BatchMinRTime::default().choose(&state(&w, 6)), vec![1]);
    }

    #[test]
    fn minrtime_cardinality_tiebreak() {
        // All flows same age: the +1 bonus must still produce a maximum
        // matching rather than an empty one (all weights zero otherwise).
        let w = [wf(0, 0, 0, 3), wf(1, 1, 1, 3), wf(2, 2, 2, 3)];
        assert_eq!(MinRTime::default().choose(&state(&w, 3)).len(), 3);
        assert_eq!(BatchMinRTime::default().choose(&state(&w, 3)).len(), 3);
    }

    #[test]
    fn maxweight_targets_congested_ports() {
        // Input 0 has three queued flows; an edge touching it carries more
        // weight than the isolated pair (1,1).
        let w = [
            wf(0, 0, 0, 0),
            wf(1, 0, 1, 0),
            wf(2, 0, 2, 0),
            wf(3, 1, 1, 0),
        ];
        for sel in [
            MaxWeight::default().choose(&state(&w, 0)),
            BatchMaxWeight::default().choose(&state(&w, 0)),
        ] {
            // Some edge at input 0 must be selected.
            assert!(sel.iter().any(|&k| w[k].src == 0));
            // And the matching is maximal enough to include (1,1) too.
            assert!(sel.iter().any(|&k| w[k].src == 1));
        }
    }

    #[test]
    fn fifo_scans_by_release() {
        let w = [wf(0, 0, 0, 4), wf(1, 0, 0, 2)];
        let sel = FifoGreedy::default().choose(&state(&w, 5));
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn queue_sizes_count_incident_flows() {
        let w = [wf(0, 0, 1, 0), wf(1, 0, 2, 0), wf(2, 1, 1, 0)];
        let s = state(&w, 0);
        assert_eq!(s.in_queue_sizes(), vec![2, 1, 0]);
        assert_eq!(s.out_queue_sizes(), vec![0, 2, 1]);
        let mut buf = vec![9u32; 7];
        s.in_queue_sizes_into(&mut buf);
        assert_eq!(buf, vec![2, 1, 0]);
    }

    #[test]
    fn incremental_weighted_policies_reset_across_instances() {
        // Reusing a policy value on a fresh instance (round restarts at
        // 0) must not panic or leak state.
        let mut p = MinRTime::default();
        let w = [wf(0, 0, 0, 9)];
        assert_eq!(p.choose(&state(&w, 9)), vec![0]);
        let w2 = [wf(0, 1, 1, 0), wf(1, 2, 2, 0)];
        assert_eq!(p.choose(&state(&w2, 0)).len(), 2);
    }
}
