//! Incremental weighted matching shared by the weighted heuristics.
//!
//! The paper's weighted policies (§5.2 **MinRTime** / **MaxWeight**, plus
//! the extension [`crate::AgedMaxWeight`]) each round extract a
//! maximum-weight matching of the waiting graph. Solving that from a cold
//! start every round made them an order of magnitude slower than MaxCard;
//! this module maintains the solution *across* rounds instead, on top of
//! [`fss_matching::HungarianScratch`] (persistent dual potentials,
//! per-row repair).
//!
//! Two drivers share the machinery:
//!
//! * [`WeightedCore`] — the policy-agnostic state machine: the dense
//!   integer weight matrix of the *cell* graph (one entry per port pair,
//!   collapsing parallel edges to the best representative), mirrors of
//!   the per-cell oldest release and per-port queue totals, and the
//!   warm-startable solver. `fss-engine` drives it from queue *events*
//!   (arrivals, dispatches); the policies below drive it by scanning the
//!   [`QueueState`] they are handed.
//! * [`WeightedSelector`] — the scan driver: diffs the waiting slice
//!   against the core's mirrors and feeds the changes through the same
//!   canonical update sequence the engine uses.
//!
//! ## The canonical round sequence
//!
//! Both drivers apply one round's changes in the same order, so for a
//! given stream of queue states the solver walks through *identical*
//! internal states — which is what makes the engine's event-driven path
//! and the legacy scan path produce identical schedules (the
//! differential tests in `fss-engine` and `fss-sim` assert this
//! round-for-round):
//!
//! 1. [`WeightedCore::begin_round`] — aging: uniform per-row weight
//!    offsets for the rounds elapsed since the last call (ascending row
//!    order, absorbed into the row potential without any repair);
//! 2. [`WeightedCore::clear_cell`] for every cell that drained to empty
//!    (ascending cell order);
//! 3. [`WeightedCore::set_row_total`] / [`WeightedCore::set_col_total`]
//!    for every port whose queue length changed (rows ascending, then
//!    columns ascending) — queue-size weight terms shift uniformly per
//!    port and are likewise absorbed into the potentials;
//! 4. [`WeightedCore::set_cell`] for every cell whose oldest flow
//!    changed (appeared, or lost its head to a dispatch), ascending;
//! 5. [`WeightedCore::select_into`] — repair (deterministic: dirty rows
//!    ascending) and read out the matching.
//!
//! ## Integer weights
//!
//! All policy weights are integral once the MinRTime aging scale is
//! fixed (see [`WeightModel`]): ages and queue sizes are integers, and
//! [`crate::AgedMaxWeight`]'s mixing coefficient is quantized to
//! `1/1024`ths. Integer arithmetic makes warm-started repair exact — no
//! drift across thousands of rounds of incremental updates.

use fss_matching::HungarianScratch;

use crate::policy::QueueState;

/// Marks "cell empty" in the oldest-release mirror.
const EMPTY: i64 = -1;

/// Fixed-point denominator for [`WeightModel::AgedMaxWeight`]'s `gamma`.
pub const GAMMA_DENOM: i64 = 1024;

/// How a policy weighs a waiting cell `(p, q)` at round `t`.
///
/// `age` is the waiting time of the cell's **oldest** flow (the best
/// parallel edge under every model here), `in_q`/`out_q` the endpoint
/// queue lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightModel {
    /// `age * scale + 1` with `scale = min(m_in, m_out) + 1`: the
    /// MinRTime objective. The scale exceeds every possible matching
    /// cardinality, so maximizing total weight is the lexicographic
    /// (total age, cardinality) objective regardless of the exact scale
    /// — the legacy implementation's `|waiting| + 1` scale optimizes the
    /// same thing with a needlessly large (and round-varying) factor.
    MinRTime,
    /// `in_q + out_q`: the MaxWeight objective (≥ 2 on any waiting
    /// cell, so nonempty cells always beat idle pairs).
    MaxWeight,
    /// `(in_q + out_q + 1) * 1024 + gamma_q * age`: AgedMaxWeight with
    /// `gamma` quantized to `gamma_q / 1024`.
    AgedMaxWeight {
        /// Aging coefficient in `1/1024`ths.
        gamma_q: i64,
    },
}

impl WeightModel {
    /// Per-round aging increment applied to every waiting cell.
    #[inline]
    fn age_coeff(self, scale: i64) -> i64 {
        match self {
            WeightModel::MinRTime => scale,
            WeightModel::MaxWeight => 0,
            WeightModel::AgedMaxWeight { gamma_q } => gamma_q,
        }
    }

    /// Weight contribution of one unit of endpoint queue length.
    #[inline]
    fn queue_coeff(self) -> i64 {
        match self {
            WeightModel::MinRTime => 0,
            WeightModel::MaxWeight => 1,
            WeightModel::AgedMaxWeight { .. } => GAMMA_DENOM,
        }
    }

    /// True when the model reads the endpoint queue lengths.
    #[inline]
    pub fn uses_queue_totals(self) -> bool {
        self.queue_coeff() != 0
    }

    /// Full weight of a nonempty cell.
    #[inline]
    fn weight(self, scale: i64, age: i64, in_q: u32, out_q: u32) -> i64 {
        let q = i64::from(in_q) + i64::from(out_q);
        match self {
            WeightModel::MinRTime => age * scale + 1,
            WeightModel::MaxWeight => q,
            WeightModel::AgedMaxWeight { gamma_q } => (q + 1) * GAMMA_DENOM + gamma_q * age,
        }
    }
}

/// Incremental weighted matching over the `m_in x m_out` cell graph (see
/// the module docs for the update protocol).
#[derive(Debug, Clone)]
pub struct WeightedCore {
    model: WeightModel,
    m_in: usize,
    m_out: usize,
    /// MinRTime aging scale: `min(m_in, m_out) + 1`.
    scale: i64,
    scratch: HungarianScratch,
    /// Oldest waiting release per cell ([`EMPTY`] when no flow waits).
    oldest: Vec<i64>,
    /// Mirrored queue lengths per input / output port.
    in_q: Vec<u32>,
    out_q: Vec<u32>,
    /// Round of the last `begin_round` (`None` before the first).
    round: Option<u64>,
}

impl WeightedCore {
    /// Empty core for an `m_in x m_out` switch.
    pub fn new(model: WeightModel, m_in: usize, m_out: usize) -> WeightedCore {
        WeightedCore {
            model,
            m_in,
            m_out,
            scale: (m_in.min(m_out) + 1) as i64,
            scratch: HungarianScratch::new(m_in, m_out),
            oldest: vec![EMPTY; m_in * m_out],
            in_q: vec![0; m_in],
            out_q: vec![0; m_out],
            round: None,
        }
    }

    /// Input-port count.
    #[inline]
    pub fn m_in(&self) -> usize {
        self.m_in
    }

    /// Output-port count.
    #[inline]
    pub fn m_out(&self) -> usize {
        self.m_out
    }

    /// The model this core weighs cells with.
    #[inline]
    pub fn model(&self) -> WeightModel {
        self.model
    }

    /// Oldest waiting release of cell `(p, q)`, if any.
    #[inline]
    pub fn cell_oldest(&self, p: u32, q: u32) -> Option<u64> {
        let r = self.oldest[p as usize * self.m_out + q as usize];
        (r >= 0).then_some(r as u64)
    }

    /// Forget everything (new instance / time moved backwards).
    pub fn reset(&mut self) {
        self.scratch.reset();
        self.oldest.fill(EMPTY);
        self.in_q.fill(0);
        self.out_q.fill(0);
        self.round = None;
    }

    /// Step 1: advance the clock to round `t`, aging every waiting cell.
    /// Panics if `t` moves backwards (callers reset instead).
    pub fn begin_round(&mut self, t: u64) {
        let prev = self.round.replace(t);
        let delta = match prev {
            None => 0,
            Some(p) => {
                assert!(t >= p, "round moved backwards ({p} -> {t}); reset first");
                (t - p) as i64
            }
        };
        let age = self.model.age_coeff(self.scale);
        if delta > 0 && age != 0 {
            for i in 0..self.m_in as u32 {
                self.scratch.add_row_offset(i, age * delta);
            }
        }
    }

    /// Step 2: cell `(p, q)` drained to empty.
    pub fn clear_cell(&mut self, p: u32, q: u32) {
        let cell = p as usize * self.m_out + q as usize;
        if self.oldest[cell] != EMPTY {
            self.oldest[cell] = EMPTY;
            self.scratch.set_weight(p, q, 0);
        }
    }

    /// Step 3a: input port `p` now has `total` waiting flows.
    pub fn set_row_total(&mut self, p: u32, total: u32) {
        let old = std::mem::replace(&mut self.in_q[p as usize], total);
        let coeff = self.model.queue_coeff();
        if coeff != 0 && total != old {
            let delta = (i64::from(total) - i64::from(old)) * coeff;
            self.scratch.add_row_offset(p, delta);
        }
    }

    /// Step 3b: output port `q` now has `total` waiting flows.
    pub fn set_col_total(&mut self, q: u32, total: u32) {
        let old = std::mem::replace(&mut self.out_q[q as usize], total);
        let coeff = self.model.queue_coeff();
        if coeff != 0 && total != old {
            let delta = (i64::from(total) - i64::from(old)) * coeff;
            self.scratch.add_col_offset(q, delta);
        }
    }

    /// Step 4: cell `(p, q)`'s oldest waiting flow is now `release`.
    /// No-op when nothing changed, so drivers may call it on every
    /// nonempty cell.
    pub fn set_cell(&mut self, p: u32, q: u32, release: u64) {
        let t = self.round.expect("begin_round before set_cell");
        let cell = p as usize * self.m_out + q as usize;
        self.oldest[cell] = release as i64;
        debug_assert!(release <= t, "release {release} after round {t}");
        let w = self.model.weight(
            self.scale,
            (t - release) as i64,
            self.in_q[p as usize],
            self.out_q[q as usize],
        );
        self.scratch.set_weight(p, q, w);
    }

    /// Step 5: repair and read out the matching as `(input, output)`
    /// pairs in ascending input order. Returns the matched total weight.
    pub fn select_into(&mut self, out: &mut Vec<(u32, u32)>) -> i64 {
        self.scratch.solve();
        out.clear();
        let mut total = 0;
        for p in 0..self.m_in as u32 {
            if let Some(q) = self.scratch.matched_col(p) {
                out.push((p, q));
                total += self.scratch.weight(p, q);
            }
        }
        total
    }

    /// Current weight of cell `(p, q)` (0 when empty). Test/debug aid.
    pub fn cell_weight(&self, p: u32, q: u32) -> i64 {
        self.scratch.weight(p, q)
    }

    /// Certificate check of the underlying solver (test/debug aid; see
    /// [`HungarianScratch::verify_certificate`]).
    pub fn verify(&self) {
        self.scratch.verify_certificate();
    }
}

/// Scan driver: runs a [`WeightedCore`] from the [`QueueState`] slices
/// the round loops hand to policies, diffing each round's waiting set
/// against the core's mirrors.
#[derive(Debug, Clone)]
pub struct WeightedSelector {
    core: WeightedCore,
    /// Stamp per cell: "seen in the current scan".
    cell_stamp: Vec<u32>,
    stamp: u32,
    /// Per-cell scan results (valid where `cell_stamp == stamp`).
    new_oldest: Vec<u64>,
    rep: Vec<u32>,
    rep_id: Vec<u32>,
    /// Queue-length histograms (only filled for models that use them).
    in_hist: Vec<u32>,
    out_hist: Vec<u32>,
    /// Reusable selection buffer.
    pairs: Vec<(u32, u32)>,
}

impl WeightedSelector {
    /// Selector for an `m_in x m_out` switch.
    pub fn new(model: WeightModel, m_in: usize, m_out: usize) -> WeightedSelector {
        WeightedSelector {
            core: WeightedCore::new(model, m_in, m_out),
            cell_stamp: vec![0; m_in * m_out],
            stamp: 0,
            new_oldest: vec![0; m_in * m_out],
            rep: vec![0; m_in * m_out],
            rep_id: vec![0; m_in * m_out],
            in_hist: vec![0; m_in],
            out_hist: vec![0; m_out],
            pairs: Vec::new(),
        }
    }

    /// Does this selector fit the given state's dimensions?
    pub fn fits(&self, state: &QueueState<'_>) -> bool {
        self.core.m_in() == state.m_in && self.core.m_out() == state.m_out
    }

    /// Select this round's matching: indices into `state.waiting`. Within
    /// a cell the representative is the oldest flow, ties broken by the
    /// smallest flow id (the cell-FIFO order of the engine's queues).
    pub fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        let mut out = Vec::new();
        self.choose_into(state, &mut out);
        out
    }

    /// [`choose`](WeightedSelector::choose) writing the selection into a
    /// caller-owned buffer (cleared first) — the allocation-free form for
    /// per-round use in the engine's hot loops.
    pub fn choose_into(&mut self, state: &QueueState<'_>, out: &mut Vec<usize>) {
        if self.core.round.is_some_and(|last| state.round <= last) {
            // Rounds strictly increase within one run, so a call at a
            // round we have already seen means the policy was reused on a
            // fresh instance. Start over.
            self.core.reset();
        }
        let (m_in, m_out) = (self.core.m_in(), self.core.m_out());
        let model = self.core.model();
        // Scan the waiting slice: per-cell oldest + representative, and
        // queue-length histograms when the model reads them.
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.cell_stamp.fill(0);
            self.stamp = 1;
        }
        let totals = model.uses_queue_totals();
        if totals {
            self.in_hist.fill(0);
            self.out_hist.fill(0);
        }
        for (idx, wf) in state.waiting.iter().enumerate() {
            let cell = wf.src as usize * m_out + wf.dst as usize;
            if totals {
                self.in_hist[wf.src as usize] += 1;
                self.out_hist[wf.dst as usize] += 1;
            }
            if self.cell_stamp[cell] != self.stamp {
                self.cell_stamp[cell] = self.stamp;
                self.new_oldest[cell] = wf.release;
                self.rep[cell] = idx as u32;
                self.rep_id[cell] = wf.id.0;
            } else if (wf.release, wf.id.0) < (self.new_oldest[cell], self.rep_id[cell]) {
                self.new_oldest[cell] = wf.release;
                self.rep[cell] = idx as u32;
                self.rep_id[cell] = wf.id.0;
            }
        }
        // The canonical update sequence (see the module docs).
        self.core.begin_round(state.round);
        for cell in 0..m_in * m_out {
            if self.core.oldest[cell] != EMPTY && self.cell_stamp[cell] != self.stamp {
                self.core
                    .clear_cell((cell / m_out) as u32, (cell % m_out) as u32);
            }
        }
        if totals {
            for p in 0..m_in {
                self.core.set_row_total(p as u32, self.in_hist[p]);
            }
            for q in 0..m_out {
                self.core.set_col_total(q as u32, self.out_hist[q]);
            }
        }
        for cell in 0..m_in * m_out {
            if self.cell_stamp[cell] == self.stamp
                && self.core.oldest[cell] != self.new_oldest[cell] as i64
            {
                self.core.set_cell(
                    (cell / m_out) as u32,
                    (cell % m_out) as u32,
                    self.new_oldest[cell],
                );
            }
        }
        let mut pairs = std::mem::take(&mut self.pairs);
        self.core.select_into(&mut pairs);
        out.clear();
        out.extend(
            pairs
                .iter()
                .map(|&(p, q)| self.rep[p as usize * m_out + q as usize] as usize),
        );
        self.pairs = pairs;
    }
}

/// Lazily (re)initialize a policy's selector for the state at hand and
/// run one round of selection — shared by the weighted policy impls.
pub(crate) fn choose_with(
    slot: &mut Option<WeightedSelector>,
    model: WeightModel,
    state: &QueueState<'_>,
) -> Vec<usize> {
    let mut out = Vec::new();
    choose_with_into(slot, model, state, &mut out);
    out
}

/// [`choose_with`] writing into a caller-owned buffer (cleared first).
pub(crate) fn choose_with_into(
    slot: &mut Option<WeightedSelector>,
    model: WeightModel,
    state: &QueueState<'_>,
    out: &mut Vec<usize>,
) {
    let rebuild = match slot {
        Some(sel) => !sel.fits(state) || sel.core.model() != model,
        None => true,
    };
    if rebuild {
        *slot = Some(WeightedSelector::new(model, state.m_in, state.m_out));
    }
    slot.as_mut()
        .expect("just initialized")
        .choose_into(state, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::WaitingFlow;
    use fss_core::FlowId;
    use fss_matching::{max_weight_matching, total_weight, BipartiteGraph};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn wf(id: u32, src: u32, dst: u32, release: u64) -> WaitingFlow {
        WaitingFlow {
            id: FlowId(id),
            src,
            dst,
            release,
        }
    }

    /// Batch oracle: total weight of the optimal matching under the same
    /// integer weights the selector uses.
    fn oracle_weight(model: WeightModel, state: &QueueState<'_>) -> i64 {
        let scale = (state.m_in.min(state.m_out) + 1) as i64;
        let mut in_q = vec![0u32; state.m_in];
        let mut out_q = vec![0u32; state.m_out];
        for w in state.waiting {
            in_q[w.src as usize] += 1;
            out_q[w.dst as usize] += 1;
        }
        let mut g = BipartiteGraph::new(state.m_in, state.m_out);
        let weights: Vec<f64> = state
            .waiting
            .iter()
            .map(|w| {
                g.add_edge(w.src, w.dst);
                model.weight(
                    scale,
                    (state.round - w.release) as i64,
                    in_q[w.src as usize],
                    out_q[w.dst as usize],
                ) as f64
            })
            .collect();
        total_weight(&max_weight_matching(&g, &weights), &weights) as i64
    }

    fn selection_weight(model: WeightModel, state: &QueueState<'_>, sel: &[usize]) -> i64 {
        let scale = (state.m_in.min(state.m_out) + 1) as i64;
        let mut in_q = vec![0u32; state.m_in];
        let mut out_q = vec![0u32; state.m_out];
        for w in state.waiting {
            in_q[w.src as usize] += 1;
            out_q[w.dst as usize] += 1;
        }
        sel.iter()
            .map(|&k| {
                let w = &state.waiting[k];
                model.weight(
                    scale,
                    (state.round - w.release) as i64,
                    in_q[w.src as usize],
                    out_q[w.dst as usize],
                )
            })
            .sum()
    }

    #[test]
    fn minrtime_model_prefers_older_flows() {
        let mut sel = WeightedSelector::new(WeightModel::MinRTime, 1, 1);
        let w = [wf(0, 0, 0, 5), wf(1, 0, 0, 1)];
        let state = QueueState {
            round: 6,
            waiting: &w,
            m_in: 1,
            m_out: 1,
        };
        assert_eq!(sel.choose(&state), vec![1]);
    }

    #[test]
    fn representative_breaks_release_ties_by_flow_id() {
        let mut sel = WeightedSelector::new(WeightModel::MinRTime, 1, 1);
        // Same release, ids out of scan order: the smaller id wins.
        let w = [wf(7, 0, 0, 2), wf(3, 0, 0, 2)];
        let state = QueueState {
            round: 4,
            waiting: &w,
            m_in: 1,
            m_out: 1,
        };
        assert_eq!(sel.choose(&state), vec![1]);
    }

    #[test]
    fn randomized_rounds_match_the_batch_oracle() {
        // Dynamic queue evolution: random arrivals/departures between
        // rounds, occasional time jumps; the incremental selection's
        // weight must equal the batch Hungarian's every round.
        let mut rng = SmallRng::seed_from_u64(0x5eed_1234);
        for model in [
            WeightModel::MinRTime,
            WeightModel::MaxWeight,
            WeightModel::AgedMaxWeight { gamma_q: 700 },
        ] {
            for trial in 0..25 {
                let m_in = rng.gen_range(1..6usize);
                let m_out = rng.gen_range(1..6usize);
                let mut sel = WeightedSelector::new(model, m_in, m_out);
                let mut waiting: Vec<WaitingFlow> = Vec::new();
                let mut next_id = 0u32;
                let mut t = 0u64;
                for _round in 0..40 {
                    for _ in 0..rng.gen_range(0..4u32) {
                        waiting.push(wf(
                            next_id,
                            rng.gen_range(0..m_in as u32),
                            rng.gen_range(0..m_out as u32),
                            t,
                        ));
                        next_id += 1;
                    }
                    if !waiting.is_empty() {
                        let state = QueueState {
                            round: t,
                            waiting: &waiting,
                            m_in,
                            m_out,
                        };
                        let picked = sel.choose(&state);
                        sel.core.verify();
                        let got = selection_weight(model, &state, &picked);
                        let want = oracle_weight(model, &state);
                        assert_eq!(
                            got, want,
                            "{model:?} trial {trial} round {t}: {got} != oracle {want}"
                        );
                        // Remove selected flows (descending index).
                        let mut picked = picked;
                        picked.sort_unstable();
                        for &k in picked.iter().rev() {
                            waiting.swap_remove(k);
                        }
                    }
                    t += rng.gen_range(1..4u64);
                }
            }
        }
    }

    #[test]
    fn reset_on_time_regression() {
        let mut sel = WeightedSelector::new(WeightModel::MinRTime, 2, 2);
        let w = [wf(0, 0, 0, 10)];
        let state = QueueState {
            round: 12,
            waiting: &w,
            m_in: 2,
            m_out: 2,
        };
        assert_eq!(sel.choose(&state), vec![0]);
        // A fresh instance restarts the clock at 0: must not panic.
        let w2 = [wf(0, 1, 1, 0)];
        let state2 = QueueState {
            round: 0,
            waiting: &w2,
            m_in: 2,
            m_out: 2,
        };
        assert_eq!(sel.choose(&state2), vec![0]);
    }
}
