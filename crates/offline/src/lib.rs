//! # fss-offline — the paper's offline approximation algorithms
//!
//! Implements both main results of *Scheduling Flows on a Switch to
//! Optimize Response Times* (SPAA 2020):
//!
//! * [`art`] — **average response time** (§3): the LP (1)–(4) lower bound
//!   (Lemma 3.1), the Bansal–Kulkarni-style iterative rounding cascade
//!   LP(ℓ) producing a low-backlog pseudo-schedule (Lemma 3.3), and the
//!   window/edge-coloring realization that turns it into a valid schedule
//!   under a `(1+c)` capacity blow-up (Theorem 1);
//! * [`mrt`] — **maximum response time** (§4): the time-constrained LP
//!   (19)–(21), dependent rounding to an integral schedule with additive
//!   port augmentation `≤ 2·dmax − 1` (Theorem 3), a binary-search driver
//!   for the minimum feasible response bound, and the deadline-model
//!   generalization (Remark 4.2);
//! * [`hardness`] — the Theorem 2 reduction gadget (Restricted Timetable)
//!   and the Figure 4 lower-bound instances for the online section;
//! * [`greedy`] — FIFO list scheduling (feasible baseline; also supplies
//!   finite LP horizons);
//! * [`exact`] — branch-and-bound optimal solvers for tiny instances, used
//!   to validate optimality claims and integrality gaps in tests.

pub mod art;
pub mod exact;
pub mod greedy;
pub mod hardness;
pub mod mrt;

pub use greedy::greedy_schedule;
