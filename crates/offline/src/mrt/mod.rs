//! Maximum response time (FS-MRT) — paper §4.
//!
//! The pipeline mirrors the paper exactly:
//!
//! 1. reduce FS-MRT with bound ρ to *Time-Constrained Flow Scheduling*
//!    (every flow may run in `R(e) = {t : r_e <= t < r_e + ρ}`); the same
//!    machinery covers the release+deadline model of Remark 4.2;
//! 2. solve the LP relaxation (19)–(21); infeasibility certifies that no
//!    schedule meets the bound;
//! 3. round the fractional solution to an integral schedule with additive
//!    port augmentation — the paper invokes Lemma 4.3 (\[35\]) for a
//!    `2·dmax − 1` bound, realized here by the engines in `fss-rounding`;
//! 4. binary-search ρ for the minimum LP-feasible value (the paper seeds
//!    the search with the best online heuristic; [`solve_mrt`] accepts an
//!    optional hint the same way).

mod solve;
mod time_constrained;

pub use solve::{lp_feasible, min_feasible_rho, solve_mrt, MrtError, MrtResult};
pub use time_constrained::{
    round_time_constrained, time_constrained_lp, RoundingEngine, TimeConstrained,
    TimeConstrainedResult,
};
