//! Time-Constrained Flow Scheduling: the LP (19)–(21) and its rounding.

use fss_core::prelude::*;
use fss_lp::{Cmp, LpBuilder, LpStatus, VarId};
use fss_rounding::{
    beck_fiala, iterative_relaxation, IterativeOptions, RoundingError, RoundingProblem,
};

/// An instance of Time-Constrained Flow Scheduling: each flow `e` may be
/// scheduled in any round of its active set `R(e)` (paper §4.2; sets may be
/// non-contiguous).
#[derive(Debug, Clone)]
pub struct TimeConstrained<'a> {
    /// The underlying switch and flows (release times are *ignored*; the
    /// active sets carry all timing information).
    pub inst: &'a Instance,
    /// Sorted active rounds per flow; must be non-empty for every flow.
    pub active: Vec<Vec<Round>>,
}

impl<'a> TimeConstrained<'a> {
    /// FS-MRT reduction: `R(e) = [r_e, r_e + rho)` (requires `rho >= 1`).
    pub fn from_response_bound(inst: &'a Instance, rho: u64) -> Self {
        assert!(rho >= 1, "response bound must be at least 1");
        let active = inst
            .flows
            .iter()
            .map(|f| (f.release..f.release + rho).collect())
            .collect();
        TimeConstrained { inst, active }
    }

    /// Release+deadline model (Remark 4.2): flow `e` may run in
    /// `[r_e, deadline_e]` (inclusive; deadlines are completion rounds - 1).
    pub fn from_deadlines(inst: &'a Instance, deadlines: &[Round]) -> Self {
        assert_eq!(deadlines.len(), inst.n(), "one deadline per flow");
        let active = inst
            .flows
            .iter()
            .zip(deadlines)
            .map(|(f, &d)| {
                assert!(d >= f.release, "deadline before release");
                (f.release..=d).collect()
            })
            .collect();
        TimeConstrained { inst, active }
    }

    /// Explicit, possibly non-contiguous active sets.
    pub fn from_active_sets(inst: &'a Instance, active: Vec<Vec<Round>>) -> Self {
        assert_eq!(active.len(), inst.n(), "one active set per flow");
        for (i, set) in active.iter().enumerate() {
            assert!(!set.is_empty(), "flow {i}: empty active set");
            assert!(
                set.windows(2).all(|w| w[0] < w[1]),
                "flow {i}: unsorted set"
            );
        }
        TimeConstrained { inst, active }
    }
}

/// Which rounding engine converts the fractional LP solution to a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundingEngine {
    /// Iterative LP relaxation targeting the paper's `2·dmax − 1` budget
    /// (default).
    #[default]
    IterativeRelaxation,
    /// Beck–Fiala kernel walk with guaranteed violation `< 4·dmax`.
    BeckFiala,
}

/// Result of [`round_time_constrained`].
#[derive(Debug, Clone)]
pub struct TimeConstrainedResult {
    /// The integral schedule (each flow in one of its active rounds).
    pub schedule: Schedule,
    /// Measured additive port augmentation: the smallest `delta` such that
    /// the schedule is feasible on `switch.augmented(delta)`. Theorem 3
    /// promises `<= 2·dmax - 1`.
    pub augmentation: u32,
    /// Optimal LP objective is irrelevant here (feasibility problem); this
    /// carries the simplex pivot count for diagnostics.
    pub lp_pivots: usize,
}

/// Build the LP relaxation (19)–(21). Returns the builder and the variable
/// map `vars[flow][k]` for the `k`-th active round of each flow.
pub fn time_constrained_lp(tc: &TimeConstrained<'_>) -> (LpBuilder, Vec<Vec<VarId>>) {
    let inst = tc.inst;
    let mut lp = LpBuilder::minimize();
    let mut vars: Vec<Vec<VarId>> = Vec::with_capacity(inst.n());
    for active in &tc.active {
        vars.push(active.iter().map(|_| lp.var(0.0)).collect());
    }
    // (20): every flow fully scheduled across its active rounds.
    for v in &vars {
        let terms: Vec<_> = v.iter().map(|&id| (id, 1.0)).collect();
        lp.constraint(&terms, Cmp::Eq, 1.0);
    }
    // (19): per (port, round) capacity. Collect terms sparsely.
    use std::collections::HashMap;
    let mut in_rows: HashMap<(u32, Round), Vec<(VarId, f64)>> = HashMap::new();
    let mut out_rows: HashMap<(u32, Round), Vec<(VarId, f64)>> = HashMap::new();
    for (i, f) in inst.flows.iter().enumerate() {
        for (k, &t) in tc.active[i].iter().enumerate() {
            let id = vars[i][k];
            in_rows
                .entry((f.src, t))
                .or_default()
                .push((id, f64::from(f.demand)));
            out_rows
                .entry((f.dst, t))
                .or_default()
                .push((id, f64::from(f.demand)));
        }
    }
    // Deterministic row order (ports then rounds) for reproducible pivots.
    let mut in_keys: Vec<_> = in_rows.keys().copied().collect();
    in_keys.sort_unstable();
    for key in in_keys {
        let terms = &in_rows[&key];
        lp.constraint(terms, Cmp::Le, f64::from(inst.switch.in_cap(key.0)));
    }
    let mut out_keys: Vec<_> = out_rows.keys().copied().collect();
    out_keys.sort_unstable();
    for key in out_keys {
        let terms = &out_rows[&key];
        lp.constraint(terms, Cmp::Le, f64::from(inst.switch.out_cap(key.0)));
    }
    (lp, vars)
}

/// Solve the LP and round. `Ok(None)` means the LP — and hence the
/// instance — is infeasible (Theorem 3's "determine that there is no
/// schedule" branch).
pub fn round_time_constrained(
    tc: &TimeConstrained<'_>,
    engine: RoundingEngine,
) -> Result<Option<TimeConstrainedResult>, RoundingError> {
    let inst = tc.inst;
    if inst.n() == 0 {
        return Ok(Some(TimeConstrainedResult {
            schedule: Schedule::from_rounds(vec![]),
            augmentation: 0,
            lp_pivots: 0,
        }));
    }
    let (lp, vars) = time_constrained_lp(tc);
    let sol = lp
        .solve()
        .map_err(|e| RoundingError::SolverFailure(e.to_string()))?;
    match sol.status {
        LpStatus::Optimal => {}
        LpStatus::Infeasible => return Ok(None),
        LpStatus::Unbounded => unreachable!("feasibility LP cannot be unbounded"),
    }

    // Build the rounding problem over the *support* of the LP solution
    // (plus one fallback variable per flow if the support went empty from
    // numerical noise — cannot happen for a feasible basic solution, but
    // cheap to guard).
    let mut flat_vars: Vec<(usize, Round)> = Vec::new(); // (flow, round)
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(inst.n());
    for (i, v) in vars.iter().enumerate() {
        let mut group = Vec::new();
        for (k, id) in v.iter().enumerate() {
            if sol.x[id.idx()] > 1e-9 {
                group.push(flat_vars.len());
                flat_vars.push((i, tc.active[i][k]));
            }
        }
        assert!(!group.is_empty(), "flow {i} has empty LP support");
        groups.push(group);
    }
    use std::collections::HashMap;
    let mut cap_rows: HashMap<(bool, u32, Round), Vec<(usize, f64)>> = HashMap::new();
    for (j, &(i, t)) in flat_vars.iter().enumerate() {
        let f = &inst.flows[i];
        cap_rows
            .entry((true, f.src, t))
            .or_default()
            .push((j, f64::from(f.demand)));
        cap_rows
            .entry((false, f.dst, t))
            .or_default()
            .push((j, f64::from(f.demand)));
    }
    let mut keys: Vec<_> = cap_rows.keys().copied().collect();
    keys.sort_unstable();
    let capacities: Vec<(Vec<(usize, f64)>, f64)> = keys
        .iter()
        .map(|&(is_in, p, t)| {
            let cap = if is_in {
                inst.switch.in_cap(p)
            } else {
                inst.switch.out_cap(p)
            };
            let _ = t;
            (cap_rows[&(is_in, p, t)].clone(), f64::from(cap))
        })
        .collect();
    let problem = RoundingProblem {
        num_vars: flat_vars.len(),
        groups,
        capacities,
    };

    let outcome = match engine {
        RoundingEngine::IterativeRelaxation => {
            let dmax = inst.dmax().max(1);
            iterative_relaxation(&problem, &IterativeOptions::for_dmax(dmax))?
        }
        RoundingEngine::BeckFiala => {
            // Map the LP point onto the support variables.
            let mut x0 = vec![0.0; flat_vars.len()];
            let mut j = 0;
            for (i, v) in vars.iter().enumerate() {
                for (k, id) in v.iter().enumerate() {
                    if sol.x[id.idx()] > 1e-9 {
                        debug_assert_eq!(flat_vars[j], (i, tc.active[i][k]));
                        x0[j] = sol.x[id.idx()];
                        j += 1;
                    }
                }
                // Renormalize the group to sum exactly 1 (numeric noise).
                let lo = j - problem.groups[i].len();
                let s: f64 = x0[lo..j].iter().sum();
                for v in &mut x0[lo..j] {
                    *v /= s;
                }
            }
            beck_fiala(&problem, &x0)
        }
    };

    let mut rounds = vec![0u64; inst.n()];
    for (gi, &chosen) in outcome.chosen.iter().enumerate() {
        rounds[gi] = flat_vars[chosen].1;
    }
    let schedule = Schedule::from_rounds(rounds);
    // Augmentation measured on the real schedule (release-agnostic: active
    // sets already encode timing; for FS-MRT reductions they respect
    // releases by construction).
    let augmentation = outcome.max_violation.ceil().max(0.0) as u32;
    Ok(Some(TimeConstrainedResult {
        schedule,
        augmentation,
        lp_pivots: sol.pivots,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_inst(flows: &[(u32, u32, u64)], m: usize) -> Instance {
        let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
        for &(s, d, r) in flows {
            b.unit_flow(s, d, r);
        }
        b.build().unwrap()
    }

    #[test]
    fn feasible_instance_schedules_within_active_sets() {
        let inst = unit_inst(&[(0, 0, 0), (0, 1, 0), (1, 1, 0)], 2);
        let tc = TimeConstrained::from_response_bound(&inst, 2);
        let res = round_time_constrained(&tc, RoundingEngine::IterativeRelaxation)
            .unwrap()
            .expect("rho = 2 is feasible");
        for (i, set) in tc.active.iter().enumerate() {
            assert!(set.contains(&res.schedule.round_of(FlowId(i as u32))));
        }
        assert!(res.augmentation <= 1, "2*dmax - 1 = 1 for unit demands");
    }

    #[test]
    fn infeasible_bound_detected() {
        // Three flows on one port pair, rho = 2: LP demands 3 units of
        // port capacity across 2 rounds.
        let inst = unit_inst(&[(0, 0, 0), (0, 0, 0), (0, 0, 0)], 1);
        let tc = TimeConstrained::from_response_bound(&inst, 2);
        assert!(
            round_time_constrained(&tc, RoundingEngine::IterativeRelaxation)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn rho_one_forces_exact_rounds() {
        let inst = unit_inst(&[(0, 0, 0), (1, 1, 0), (0, 1, 1)], 2);
        let tc = TimeConstrained::from_response_bound(&inst, 1);
        let res = round_time_constrained(&tc, RoundingEngine::IterativeRelaxation)
            .unwrap()
            .expect("disjoint flows fit with rho = 1");
        assert_eq!(res.schedule.round_of(FlowId(0)), 0);
        assert_eq!(res.schedule.round_of(FlowId(2)), 1);
    }

    #[test]
    fn deadline_model_respected() {
        let inst = unit_inst(&[(0, 0, 0), (0, 0, 0)], 1);
        // Flow 0 must finish by round 0; flow 1 by round 1.
        let tc = TimeConstrained::from_deadlines(&inst, &[0, 1]);
        let res = round_time_constrained(&tc, RoundingEngine::IterativeRelaxation)
            .unwrap()
            .expect("staggered deadlines feasible");
        assert_eq!(res.schedule.round_of(FlowId(0)), 0);
        assert_eq!(res.schedule.round_of(FlowId(1)), 1);
    }

    #[test]
    fn non_contiguous_active_sets() {
        let inst = unit_inst(&[(0, 0, 0), (0, 0, 0)], 1);
        let tc = TimeConstrained::from_active_sets(&inst, vec![vec![0, 7], vec![0, 7]]);
        let res = round_time_constrained(&tc, RoundingEngine::IterativeRelaxation)
            .unwrap()
            .expect("two flows, two allowed rounds");
        let (a, b) = (
            res.schedule.round_of(FlowId(0)),
            res.schedule.round_of(FlowId(1)),
        );
        assert_ne!(a, b);
        assert!(a == 0 || a == 7);
        assert!(b == 0 || b == 7);
        assert_eq!(res.augmentation, 0);
    }

    #[test]
    fn both_engines_agree_on_feasibility_and_bounds() {
        use fss_core::gen::{random_instance, GenParams};
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(19);
        for _ in 0..10 {
            let p = GenParams::unit(3, 10, 4);
            let inst = random_instance(&mut rng, &p);
            let rho = 6;
            let tc = TimeConstrained::from_response_bound(&inst, rho);
            let a = round_time_constrained(&tc, RoundingEngine::IterativeRelaxation).unwrap();
            let b = round_time_constrained(&tc, RoundingEngine::BeckFiala).unwrap();
            assert_eq!(a.is_some(), b.is_some());
            if let (Some(a), Some(b)) = (a, b) {
                assert!(a.augmentation <= 1, "paper bound 2*dmax-1 = 1");
                assert!(b.augmentation <= 3, "Beck-Fiala bound < 4*dmax = 4");
            }
        }
    }
}
