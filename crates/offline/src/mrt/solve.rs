//! FS-MRT driver: binary search over the response bound.
//!
//! Minimizes ρ such that the LP (19)–(21) with `R(e) = [r_e, r_e + ρ)` is
//! feasible. The LP value lower-bounds the integral optimum, so the
//! schedule produced at `ρ*` has maximum response time at most the optimal
//! one — at the price of `<= 2·dmax − 1` extra capacity per port
//! (Theorem 3). The search is seeded with an upper bound from the greedy
//! baseline (the paper seeds with its best online heuristic; pass a better
//! `hint` if one is available).

use fss_core::prelude::*;
use fss_lp::LpStatus;
use fss_rounding::RoundingError;

use super::time_constrained::{
    round_time_constrained, time_constrained_lp, RoundingEngine, TimeConstrained,
};

/// Failures of the FS-MRT solver.
#[derive(Debug, Clone, PartialEq)]
pub enum MrtError {
    /// LP solver failure (pivot budget).
    Solver(String),
}

impl std::fmt::Display for MrtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrtError::Solver(m) => write!(f, "solver failure: {m}"),
        }
    }
}

impl std::error::Error for MrtError {}

/// Result of [`solve_mrt`].
#[derive(Debug, Clone)]
pub struct MrtResult {
    /// The minimum LP-feasible response bound ρ* (a lower bound on the
    /// integral optimum; the schedule achieves it with augmentation).
    pub rho_star: u64,
    /// Integral schedule with `max response <= rho_star`.
    pub schedule: Schedule,
    /// Measured additive augmentation (Theorem 3 promises `<= 2·dmax − 1`).
    pub augmentation: u32,
}

/// Is the LP (19)–(21) feasible for response bound `rho`?
pub fn lp_feasible(inst: &Instance, rho: u64) -> Result<bool, MrtError> {
    if inst.n() == 0 {
        return Ok(true);
    }
    let tc = TimeConstrained::from_response_bound(inst, rho);
    let (lp, _) = time_constrained_lp(&tc);
    let sol = lp.solve().map_err(|e| MrtError::Solver(e.to_string()))?;
    Ok(sol.status == LpStatus::Optimal)
}

/// Minimum ρ for which the LP relaxation is feasible. `hint` is any known
/// feasible upper bound (e.g. from a heuristic schedule); the greedy
/// baseline is used when `None`.
pub fn min_feasible_rho(inst: &Instance, hint: Option<u64>) -> Result<u64, MrtError> {
    if inst.n() == 0 {
        return Ok(0);
    }
    let hi_seed = hint.unwrap_or_else(|| {
        let g = crate::greedy::greedy_schedule(inst);
        fss_core::metrics::evaluate(inst, &g).max_response
    });
    debug_assert!(hi_seed >= 1);
    let mut hi = hi_seed;
    // The hint must itself be feasible; distrust and grow if not (a bad
    // hint must not make the solver wrong, only slower).
    while !lp_feasible(inst, hi)? {
        hi = hi.saturating_mul(2).max(1);
    }
    let mut lo = 1u64;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if lp_feasible(inst, mid)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// Full FS-MRT pipeline: binary search + rounding.
pub fn solve_mrt(
    inst: &Instance,
    hint: Option<u64>,
    engine: RoundingEngine,
) -> Result<MrtResult, MrtError> {
    if inst.n() == 0 {
        return Ok(MrtResult {
            rho_star: 0,
            schedule: Schedule::from_rounds(vec![]),
            augmentation: 0,
        });
    }
    let rho_star = min_feasible_rho(inst, hint)?;
    let tc = TimeConstrained::from_response_bound(inst, rho_star);
    let res = round_time_constrained(&tc, engine)
        .map_err(|e| match e {
            RoundingError::Infeasible => {
                MrtError::Solver("rounding claims infeasible at LP-feasible rho".into())
            }
            RoundingError::SolverFailure(m) => MrtError::Solver(m),
        })?
        .expect("LP feasible at rho_star by binary-search invariant");
    debug_assert!(fss_core::metrics::evaluate(inst, &res.schedule).max_response <= rho_star);
    Ok(MrtResult {
        rho_star,
        schedule: res.schedule,
        augmentation: res.augmentation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::min_max_response;
    use fss_core::gen::{random_instance, GenParams};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        let r = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
        assert_eq!(r.rho_star, 0);
    }

    #[test]
    fn serialized_port_needs_rho_n() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        for _ in 0..4 {
            b.unit_flow(0, 0, 0);
        }
        let inst = b.build().unwrap();
        let r = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
        assert_eq!(r.rho_star, 4);
        let m = fss_core::metrics::evaluate(&inst, &r.schedule);
        assert!(m.max_response <= 4);
    }

    #[test]
    fn rho_star_lower_bounds_exact_optimum() {
        let mut rng = SmallRng::seed_from_u64(55);
        for _ in 0..8 {
            let p = GenParams::unit(3, 8, 3);
            let inst = random_instance(&mut rng, &p);
            let r = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
            let (opt, _) = min_max_response(&inst);
            assert!(
                r.rho_star <= opt,
                "LP bound {} exceeds integral optimum {opt}",
                r.rho_star
            );
            // Theorem 3: schedule meets rho_star with small augmentation.
            let m = fss_core::metrics::evaluate(&inst, &r.schedule);
            assert!(m.max_response <= r.rho_star);
            assert!(r.augmentation <= 1, "2*dmax-1 = 1 for unit demands");
            validate::check(&inst, &r.schedule, &inst.switch.augmented(r.augmentation)).unwrap();
        }
    }

    #[test]
    fn bad_hint_is_corrected() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        for _ in 0..3 {
            b.unit_flow(0, 0, 0);
        }
        let inst = b.build().unwrap();
        // Hint 1 is infeasible; solver must still find 3.
        let r = solve_mrt(&inst, Some(1), RoundingEngine::IterativeRelaxation).unwrap();
        assert_eq!(r.rho_star, 3);
    }

    #[test]
    fn mixed_demands_respect_paper_bound() {
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..6 {
            let p = GenParams {
                m: 3,
                m_out: 3,
                cap: 4,
                n: 10,
                max_demand: 3,
                max_release: 4,
            };
            let inst = random_instance(&mut rng, &p);
            let dmax = inst.dmax();
            let r = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
            assert!(
                r.augmentation < 2 * dmax,
                "augmentation {} exceeds 2*dmax-1 = {}",
                r.augmentation,
                2 * dmax - 1
            );
            validate::check(&inst, &r.schedule, &inst.switch.augmented(r.augmentation)).unwrap();
        }
    }
}
