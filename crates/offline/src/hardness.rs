//! Hardness and lower-bound gadget generators.
//!
//! * [`rtt_reduction`] — the Theorem 2 reduction from the Restricted
//!   Timetable problem (Even, Itai, Shamir) to FS-MRT with ρ = 3, which
//!   shows a 4/3 inapproximability threshold;
//! * [`figure_4a`] — the Lemma 5.1 construction (no online algorithm has a
//!   bounded competitive ratio for average response time);
//! * [`figure_4b`] — the Lemma 5.2 construction (3/2 online lower bound for
//!   maximum response time).
//!
//! Rounds are 0-based in this codebase; the paper's round `h` is `h - 1`
//! here, so the Theorem 2 target response bound stays ρ = 3.

use fss_core::prelude::*;

/// A Restricted Timetable instance (Definition 4.1): hour set `H =
/// {1, 2, 3}` is implicit; `teachers[i]` is the hour set `T_i` (each of
/// size ≥ 2, values in 1..=3) and `classes[i] = g(i)` the class set of
/// teacher `i` (0-based class ids, `|g(i)| = |T_i|`).
#[derive(Debug, Clone)]
pub struct RttInstance {
    /// `T_i ⊆ {1,2,3}`, sorted, `|T_i| >= 2`.
    pub teachers: Vec<Vec<u8>>,
    /// `g(i)`: the classes teacher `i` must meet, 0-based.
    pub classes: Vec<Vec<u32>>,
    /// Number of classes `m'`.
    pub num_classes: usize,
}

impl RttInstance {
    /// Validate Definition 4.1's structural requirements.
    pub fn assert_valid(&self) {
        assert_eq!(self.teachers.len(), self.classes.len());
        for (i, (t, g)) in self.teachers.iter().zip(&self.classes).enumerate() {
            assert!(
                (2..=3).contains(&t.len()),
                "teacher {i}: |T_i| must be 2 or 3"
            );
            assert!(
                t.windows(2).all(|w| w[0] < w[1]),
                "teacher {i}: unsorted T_i"
            );
            assert!(
                t.iter().all(|&h| (1..=3).contains(&h)),
                "teacher {i}: hour out of range"
            );
            assert_eq!(t.len(), g.len(), "teacher {i}: |g(i)| != |T_i|");
            assert!(g.iter().all(|&j| (j as usize) < self.num_classes));
            let mut gg = g.clone();
            gg.sort_unstable();
            gg.dedup();
            assert_eq!(gg.len(), g.len(), "teacher {i}: duplicate classes");
        }
    }
}

/// The FS-MRT instance of the Theorem 2 reduction. RTT is satisfiable iff
/// the returned instance admits a schedule with maximum response time ≤ 3.
///
/// Port layout: inputs `0..m` are the teacher ports `p_i`; outputs `0..m'`
/// are the class ports `q_j`; further ports are the gadget blockers of
/// construction steps 3–5.
pub fn rtt_reduction(rtt: &RttInstance) -> Instance {
    rtt.assert_valid();
    let m = rtt.teachers.len();
    let m_prime = rtt.num_classes;

    // Count extra ports. Step 3: three new inputs per class. Steps 4/5: one
    // new output and three new inputs per teacher with |T_i| = 2 and
    // 1 ∈ T_i (T_i = {1,3} or {1,2}); T_i = {2,3} needs no gadget (the
    // release time excludes hour 1 on its own), |T_i| = 3 none either.
    let needs_gadget = |t: &Vec<u8>| t.len() == 2 && t[0] == 1; // {1,2} or {1,3}
    let gadget_teachers: Vec<usize> = (0..m).filter(|&i| needs_gadget(&rtt.teachers[i])).collect();

    let num_inputs = m + 3 * m_prime + 3 * gadget_teachers.len();
    let num_outputs = m_prime + gadget_teachers.len();
    let mut b = InstanceBuilder::new(Switch::uniform(num_inputs, num_outputs, 1));

    // Steps 1-2: teaching flows p_i -> q_j released at min(T_i) (0-based).
    for i in 0..m {
        let release = u64::from(rtt.teachers[i][0]) - 1;
        for &j in &rtt.classes[i] {
            b.unit_flow(i as u32, j, release);
        }
    }
    // Step 3: for each class j, three blocker flows from fresh inputs
    // released at paper-round 4 (0-based 3): they saturate q_j in rounds
    // 4-6, forcing all teaching into rounds 1-3.
    for j in 0..m_prime {
        for k in 0..3 {
            let w = (m + 3 * j + k) as u32;
            b.unit_flow(w, j as u32, 3);
        }
    }
    // Steps 4-5: for each gadget teacher, a dedicated output q*_i and a
    // timing flow p_i -> q*_i that must run exactly in the hour excluded
    // from T_i, pinned by three blockers on q*_i.
    for (gi, &i) in gadget_teachers.iter().enumerate() {
        let q_star = (m_prime + gi) as u32;
        let base_w = (m + 3 * m_prime + 3 * gi) as u32;
        let t = &rtt.teachers[i];
        if t == &vec![1, 3] {
            // Step 4: p_i -> q* released paper-round 2 (0-based 1);
            // blockers released paper-round 3 (0-based 2) occupy q* in
            // rounds 3, 4, 5 — so p_i -> q* must run in round 2.
            b.unit_flow(i as u32, q_star, 1);
            for k in 0..3 {
                b.unit_flow(base_w + k, q_star, 2);
            }
        } else {
            debug_assert_eq!(t, &vec![1, 2]);
            // Step 5: p_i -> q* released paper-round 3 (0-based 2);
            // blockers released paper-round 4 (0-based 3) pin it to round 3.
            b.unit_flow(i as u32, q_star, 2);
            for k in 0..3 {
                b.unit_flow(base_w + k, q_star, 3);
            }
        }
    }
    b.build().expect("reduction respects model invariants")
}

/// Lemma 5.1 construction (Figure 4(a)): ports `{1, 2, 3, 4}` become
/// inputs `{0: p1, 1: p4}` and outputs `{0: q2, 1: q3}`. For each round
/// `t < T` two solid flows `(p1, q2)` and `(p1, q3)` are released; for
/// each round `T <= t < M` one dashed flow `(p4, q3)`. Any online algorithm
/// accumulates Ω(T) backlog on port 2 or 3 and the dashed stream then
/// forces average response time M/T times optimal.
pub fn figure_4a(t_rounds: u64, m_rounds: u64) -> Instance {
    assert!(t_rounds >= 1 && m_rounds > t_rounds);
    let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
    for t in 0..t_rounds {
        b.unit_flow(0, 0, t); // (1, 2)
        b.unit_flow(0, 1, t); // (1, 3)
    }
    for t in t_rounds..m_rounds {
        b.unit_flow(1, 1, t); // (4, 3)
    }
    b.build().expect("figure 4a instance is valid")
}

/// Lemma 5.2 construction (Figure 4(b)): inputs `{0: p1, 1: p4, 2: p7}`,
/// outputs `{0: q2, 1: q3, 2: q5, 3: q6}`. Solid flows released in
/// paper-round 1 (0-based 0): `(1,3), (1,2), (4,5), (4,6)`; dashed flows
/// released in round 2 (0-based 1): `(7,3), (7,5)`. The offline optimum
/// has maximum response time 2; every online algorithm is forced to 3.
pub fn figure_4b() -> Instance {
    let mut b = InstanceBuilder::new(Switch::uniform(3, 4, 1));
    b.unit_flow(0, 1, 0); // (1,3)
    b.unit_flow(0, 0, 0); // (1,2)
    b.unit_flow(1, 2, 0); // (4,5)
    b.unit_flow(1, 3, 0); // (4,6)
    b.unit_flow(2, 1, 1); // (7,3)
    b.unit_flow(2, 2, 1); // (7,5)
    b.build().expect("figure 4b instance is valid")
}

/// A small satisfiable RTT instance (one teacher, `T = {1,3}`, two
/// classes); its reduction has 12 flows — within reach of the exact solver.
pub fn small_satisfiable_rtt() -> RttInstance {
    RttInstance {
        teachers: vec![vec![1, 3]],
        classes: vec![vec![0, 1]],
        num_classes: 2,
    }
}

/// An unsatisfiable RTT instance: three teachers, all with `T = {1,3}`,
/// all needing the same two classes. Each class can host at most one
/// teacher per hour, so two hours serve at most two of the three teachers.
pub fn small_unsatisfiable_rtt() -> RttInstance {
    RttInstance {
        teachers: vec![vec![1, 3], vec![1, 3], vec![1, 3]],
        classes: vec![vec![0, 1], vec![0, 1], vec![0, 1]],
        num_classes: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::min_max_response;
    use crate::mrt::{lp_feasible, solve_mrt, RoundingEngine};

    #[test]
    fn figure_4b_offline_optimum_is_two() {
        let inst = figure_4b();
        let (opt, sched) = min_max_response(&inst);
        assert_eq!(opt, 2, "Lemma 5.2: offline optimum is 2");
        validate::check(&inst, &sched, &inst.switch).unwrap();
    }

    #[test]
    fn figure_4a_shape() {
        let inst = figure_4a(4, 10);
        assert_eq!(inst.n(), 2 * 4 + 6);
        assert!(inst.is_unit_demand());
        // All solid flows share input 0.
        assert_eq!(inst.in_port_load(0), 8);
    }

    #[test]
    fn satisfiable_rtt_schedules_with_rho_three() {
        let inst = rtt_reduction(&small_satisfiable_rtt());
        assert_eq!(inst.n(), 12);
        let (opt, _) = min_max_response(&inst);
        assert_eq!(opt, 3, "satisfiable RTT reduces to max response exactly 3");
    }

    #[test]
    fn unsatisfiable_rtt_lp_infeasible_at_rho_three() {
        let inst = rtt_reduction(&small_unsatisfiable_rtt());
        // Aggregate capacity argument makes even the LP infeasible: each
        // class output has capacity 2 across hours {1,3} but demand 3.
        assert!(!lp_feasible(&inst, 3).unwrap());
        assert!(lp_feasible(&inst, 4).unwrap());
    }

    #[test]
    fn satisfiable_rtt_solved_by_mrt_pipeline() {
        let inst = rtt_reduction(&small_satisfiable_rtt());
        let r = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
        assert_eq!(r.rho_star, 3);
        assert!(r.augmentation <= 1);
    }

    #[test]
    #[should_panic(expected = "|T_i|")]
    fn invalid_rtt_rejected() {
        let bad = RttInstance {
            teachers: vec![vec![1]],
            classes: vec![vec![0]],
            num_classes: 1,
        };
        bad.assert_valid();
    }

    #[test]
    fn reduction_handles_all_gadget_cases() {
        // Teachers covering {1,2}, {1,3}, {2,3}, {1,2,3}.
        let rtt = RttInstance {
            teachers: vec![vec![1, 2], vec![1, 3], vec![2, 3], vec![1, 2, 3]],
            classes: vec![vec![0, 1], vec![2, 3], vec![0, 2], vec![1, 3, 4]],
            num_classes: 5,
        };
        let inst = rtt_reduction(&rtt);
        // Flows: 2+2+2+3 teaching + 3*5 class blockers + 2 gadgets * 4.
        assert_eq!(inst.n(), 9 + 15 + 8);
        // Teacher with T={2,3} has release 1 (paper hour 2).
        let t2_flows: Vec<_> = inst
            .flows
            .iter()
            .filter(|f| f.src == 2 && f.release == 1)
            .collect();
        assert_eq!(t2_flows.len(), 2);
    }
}
