#![allow(clippy::needless_range_loop)] // parallel-array index loops are clearer here
//! The Bansal–Kulkarni iterative rounding cascade (paper §3.1, Fig. 2).
//!
//! LP(0) is the interval LP (5)–(8) with 4-round windows. Each iteration
//! solves the current LP at a vertex, permanently fixes the flows the
//! vertex assigns integrally (`A(ℓ)`), drops zero variables, regroups the
//! surviving variables per port into intervals of size in `[4c_p, 5c_p)`
//! measured by the previous solution's mass (constraint (11)), and
//! re-solves. Lemma 3.5 halves the surviving flow count per iteration, so
//! `O(log n)` iterations suffice; Lemma 3.7 bounds the windowed overload of
//! the final integral assignment by `O(c_p log n)`.
//!
//! Two pragmatic notes, both recorded in DESIGN.md:
//! * constraint (11) is implemented as `Σ_{b∈I} b ≤ Size(I)` (the paper's
//!   `Size(I)·c_p` is a typo: sizes already carry the capacity unit);
//! * a degenerate vertex may fix no flow; the cascade then force-fixes the
//!   flow with the largest single-round mass, preserving correctness of
//!   the output (the stats report how often this fallback fired — on the
//!   instances in this repo's test-suite it essentially never does).

use fss_core::prelude::*;
use fss_lp::{Cmp, LpBuilder, LpStatus, SimplexOptions};

use super::lp_bound::default_horizon;

const TOL: f64 = 1e-7;

/// Diagnostics from the cascade.
#[derive(Debug, Clone)]
pub struct IterativeStats {
    /// Number of LP iterations (Lemma 3.5 predicts `O(log n)`).
    pub iterations: usize,
    /// Optimal objective of LP(0) — a lower bound on `Σ(ρ_e − 1/2)`.
    pub lp0_cost: f64,
    /// Degeneracy fallbacks used (see module docs).
    pub forced_fixes: usize,
}

/// A pseudo-schedule plus its rounding statistics.
#[derive(Debug, Clone)]
pub struct PseudoResult {
    /// The integral (possibly port-overloaded) assignment of Lemma 3.3.
    pub pseudo: PseudoSchedule,
    /// Cascade diagnostics.
    pub stats: IterativeStats,
}

/// A surviving variable `b_{e,t}` with its current LP value.
#[derive(Debug, Clone, Copy)]
struct SurvivorVar {
    flow: usize,
    t: u64,
    value: f64,
}

/// Run the cascade on a unit-demand instance.
pub fn iterative_rounding(inst: &Instance) -> PseudoResult {
    assert!(
        inst.is_unit_demand(),
        "the cascade is defined for unit demands"
    );
    let n = inst.n();
    if n == 0 {
        return PseudoResult {
            pseudo: PseudoSchedule::from_rounds(vec![]),
            stats: IterativeStats {
                iterations: 0,
                lp0_cost: 0.0,
                forced_fixes: 0,
            },
        };
    }
    let horizon = default_horizon(inst);
    let mut fixed: Vec<Option<u64>> = vec![None; n];
    let mut forced_fixes = 0usize;

    // ---- LP(0): 4-round block constraints --------------------------------
    let mut survivors: Vec<SurvivorVar> = Vec::new();
    let lp0_cost;
    {
        let mut lp = LpBuilder::minimize();
        let mut ids: Vec<(usize, u64, fss_lp::VarId)> = Vec::new();
        for (i, f) in inst.flows.iter().enumerate() {
            for t in f.release..horizon {
                let coef = (t - f.release) as f64 + 0.5;
                ids.push((i, t, lp.var(coef)));
            }
        }
        // (6): flow completion.
        let mut per_flow: Vec<Vec<(fss_lp::VarId, f64)>> = vec![Vec::new(); n];
        for &(i, _, v) in &ids {
            per_flow[i].push((v, 1.0));
        }
        for terms in &per_flow {
            lp.constraint(terms, Cmp::Ge, 1.0);
        }
        // (7): 4-round block capacity per port.
        use std::collections::HashMap;
        let mut blocks: HashMap<(bool, u32, u64), Vec<(fss_lp::VarId, f64)>> = HashMap::new();
        for &(i, t, v) in &ids {
            let f = &inst.flows[i];
            let a = t / 4;
            blocks.entry((true, f.src, a)).or_default().push((v, 1.0));
            blocks.entry((false, f.dst, a)).or_default().push((v, 1.0));
        }
        let mut keys: Vec<_> = blocks.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let (is_in, p, _) = key;
            let cap = if is_in {
                inst.switch.in_cap(p)
            } else {
                inst.switch.out_cap(p)
            };
            lp.constraint(&blocks[&key], Cmp::Le, 4.0 * f64::from(cap));
        }
        let sol = lp
            .solve_with(&SimplexOptions::default())
            .expect("LP(0) within pivot budget");
        assert_eq!(sol.status, LpStatus::Optimal, "LP(0) is always feasible");
        lp0_cost = sol.objective;
        for &(i, t, v) in &ids {
            let val = sol.x[v.idx()];
            if val > TOL {
                survivors.push(SurvivorVar {
                    flow: i,
                    t,
                    value: val,
                });
            }
        }
    }
    fix_integral(inst, &mut survivors, &mut fixed, &mut forced_fixes);

    // ---- LP(ℓ), ℓ >= 1: survivor-interval constraints --------------------
    let max_iters = 4 * (usize::BITS - n.leading_zeros()) as usize + 10;
    let mut iterations = 1usize;
    while fixed.iter().any(Option::is_none) && iterations < max_iters {
        iterations += 1;
        let mut lp = LpBuilder::minimize();
        // One LP var per survivor, same objective coefficients.
        let ids: Vec<fss_lp::VarId> = survivors
            .iter()
            .map(|s| lp.var((s.t - inst.flows[s.flow].release) as f64 + 0.5))
            .collect();
        // (10): flow completion over surviving support.
        let mut per_flow: Vec<Vec<(fss_lp::VarId, f64)>> = vec![Vec::new(); n];
        for (k, s) in survivors.iter().enumerate() {
            per_flow[s.flow].push((ids[k], 1.0));
        }
        for (i, terms) in per_flow.iter().enumerate() {
            if fixed[i].is_none() {
                debug_assert!(!terms.is_empty(), "unfixed flow lost its support");
                lp.constraint(terms, Cmp::Ge, 1.0);
            }
        }
        // (11): per-port interval groups over the previous solution's mass.
        add_interval_constraints(inst, &survivors, &ids, &mut lp, true);
        add_interval_constraints(inst, &survivors, &ids, &mut lp, false);

        let sol = lp
            .solve_with(&SimplexOptions::default())
            .expect("LP(l) within pivot budget");
        assert_eq!(
            sol.status,
            LpStatus::Optimal,
            "LP(l) relaxes LP(l-1), so it stays feasible"
        );
        for (k, s) in survivors.iter_mut().enumerate() {
            s.value = sol.x[ids[k].idx()];
        }
        survivors.retain(|s| s.value > TOL);
        fix_integral(inst, &mut survivors, &mut fixed, &mut forced_fixes);
    }
    // Safety net: anything still unfixed goes to its heaviest round.
    if fixed.iter().any(Option::is_none) {
        for i in 0..n {
            if fixed[i].is_none() {
                let best = survivors
                    .iter()
                    .filter(|s| s.flow == i)
                    .max_by(|a, b| a.value.total_cmp(&b.value))
                    .expect("unfixed flow retains support");
                fixed[i] = Some(best.t);
                forced_fixes += 1;
            }
        }
        survivors.retain(|s| fixed[s.flow].is_none());
    }

    let rounds: Vec<u64> = fixed
        .into_iter()
        .map(|r| r.expect("all flows fixed"))
        .collect();
    PseudoResult {
        pseudo: PseudoSchedule::from_rounds(rounds),
        stats: IterativeStats {
            iterations,
            lp0_cost,
            forced_fixes,
        },
    }
}

/// Fix flows the current solution assigns integrally; if an iteration fixes
/// nothing (degenerate vertex), force-fix the heaviest variable's flow.
fn fix_integral(
    inst: &Instance,
    survivors: &mut Vec<SurvivorVar>,
    fixed: &mut [Option<u64>],
    forced_fixes: &mut usize,
) {
    let mut any = false;
    let mut best_overall: Option<usize> = None; // survivor index
    for (k, s) in survivors.iter().enumerate() {
        if fixed[s.flow].is_some() {
            continue;
        }
        if s.value >= 1.0 - TOL {
            fixed[s.flow] = Some(s.t);
            any = true;
        } else if best_overall
            .map(|b| survivors[b].value < s.value)
            .unwrap_or(true)
        {
            best_overall = Some(k);
        }
    }
    if !any {
        if let Some(k) = best_overall {
            let s = survivors[k];
            fixed[s.flow] = Some(s.t);
            *forced_fixes += 1;
        }
    }
    let _ = inst;
    survivors.retain(|s| fixed[s.flow].is_none());
}

/// Per-port interval grouping (paper's `I(p, a, ℓ)`): sort the surviving
/// variables of flows incident on each port by round (ties by flow id),
/// then cut greedily once the accumulated previous-solution mass first
/// exceeds `4·c_p`; each group contributes `Σ b ≤ Size(group)`.
fn add_interval_constraints(
    inst: &Instance,
    survivors: &[SurvivorVar],
    ids: &[fss_lp::VarId],
    lp: &mut LpBuilder,
    input_side: bool,
) {
    let ports = if input_side {
        inst.switch.num_inputs()
    } else {
        inst.switch.num_outputs()
    };
    for p in 0..ports as u32 {
        let cap = if input_side {
            inst.switch.in_cap(p)
        } else {
            inst.switch.out_cap(p)
        };
        let mut vars: Vec<usize> = (0..survivors.len())
            .filter(|&k| {
                let f = &inst.flows[survivors[k].flow];
                if input_side {
                    f.src == p
                } else {
                    f.dst == p
                }
            })
            .collect();
        if vars.is_empty() {
            continue;
        }
        vars.sort_by_key(|&k| (survivors[k].t, survivors[k].flow));
        let threshold = 4.0 * f64::from(cap);
        let mut group: Vec<(fss_lp::VarId, f64)> = Vec::new();
        let mut size = 0.0f64;
        for &k in &vars {
            group.push((ids[k], 1.0));
            size += survivors[k].value;
            if size > threshold {
                lp.constraint(&group, Cmp::Le, size);
                group.clear();
                size = 0.0;
            }
        }
        if !group.is_empty() {
            lp.constraint(&group, Cmp::Le, size.max(TOL));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_core::gen::{random_instance, GenParams};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        let r = iterative_rounding(&inst);
        assert!(r.pseudo.is_empty());
    }

    #[test]
    fn single_flow_assigned_at_release() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        b.unit_flow(0, 0, 2);
        let inst = b.build().unwrap();
        let r = iterative_rounding(&inst);
        assert_eq!(r.pseudo.round_of(FlowId(0)), 2);
        assert!((r.stats.lp0_cost - 0.5).abs() < 1e-5);
    }

    #[test]
    fn pseudo_cost_bounded_by_lp0_cost() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..5 {
            let p = GenParams::unit(3, 12, 4);
            let inst = random_instance(&mut rng, &p);
            let r = iterative_rounding(&inst);
            // Pseudo cost in LP units: sum (t - r + 1/2).
            let cost: f64 = r
                .pseudo
                .rounds()
                .iter()
                .zip(&inst.flows)
                .map(|(&t, f)| (t - f.release) as f64 + 0.5)
                .sum();
            // Lemma 3.3(2) modulo forced fixes; give those slack.
            let slack = r.stats.forced_fixes as f64 * inst.n() as f64;
            assert!(
                cost <= r.stats.lp0_cost + slack + 1e-5,
                "pseudo cost {cost} exceeds LP(0) {}",
                r.stats.lp0_cost
            );
        }
    }

    #[test]
    fn windowed_overload_is_logarithmic() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..5 {
            let p = GenParams::unit(4, 16, 3);
            let inst = random_instance(&mut rng, &p);
            let r = iterative_rounding(&inst);
            let overload = r.pseudo.max_window_overload(&inst);
            let log_n = (inst.n() as f64).log2().ceil() as i64 + 1;
            // Lemma 3.7: <= 10 * c_p * log n with c_p = 1 here (plus the
            // LP(0) additive 4).
            assert!(
                overload <= 10 * log_n + 4,
                "overload {overload} vs bound {}",
                10 * log_n + 4
            );
        }
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let mut rng = SmallRng::seed_from_u64(13);
        let p = GenParams::unit(4, 24, 4);
        let inst = random_instance(&mut rng, &p);
        let r = iterative_rounding(&inst);
        let bound = 4 * (usize::BITS - inst.n().leading_zeros()) as usize + 10;
        assert!(r.stats.iterations <= bound);
    }

    #[test]
    fn respects_release_times() {
        let mut rng = SmallRng::seed_from_u64(21);
        let p = GenParams::unit(3, 10, 6);
        let inst = random_instance(&mut rng, &p);
        let r = iterative_rounding(&inst);
        for (i, f) in inst.flows.iter().enumerate() {
            assert!(r.pseudo.round_of(FlowId(i as u32)) >= f.release);
        }
    }
}
