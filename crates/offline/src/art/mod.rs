//! Average response time (FS-ART) — paper §3.
//!
//! Three stages, exactly as in the paper:
//!
//! 1. `lp_bound` — the Garg–Kumar-style LP (1)–(4), whose optimum lower
//!    bounds the total response time of *any* schedule (Lemma 3.1); used as
//!    the comparison baseline in experiments (Figure 6);
//! 2. `iterative` — the Bansal–Kulkarni iterative rounding cascade over
//!    the interval LPs (5)–(12): produces a *pseudo-schedule* assigning
//!    each unit flow to one round with cost at most the LP optimum and
//!    windowed port overload `O(c_p log n)` (Lemma 3.3);
//! 3. `realize` — the Theorem 1 conversion: chop time into windows,
//!    decompose each window's flow graph into b-matchings (König edge
//!    coloring after port replication), and execute the matchings under a
//!    `(1 + c)` capacity blow-up, yielding a valid schedule with average
//!    response time within `1 + O(log n)/c` of optimal.

mod iterative;
mod lp_bound;
mod realize;

pub use iterative::{iterative_rounding, IterativeStats, PseudoResult};
pub use lp_bound::{art_lp_lower_bound, art_lp_lower_bound_windowed, ArtLpError};
pub use realize::{realize_schedule, realize_schedule_with_window, RealizedSchedule};

use fss_core::prelude::*;

/// End-to-end FS-ART result (Theorem 1 pipeline).
#[derive(Debug, Clone)]
pub struct ArtResult {
    /// The valid schedule on the `(1+c)`-scaled switch.
    pub schedule: Schedule,
    /// Capacity blow-up factor used (`1 + c`).
    pub capacity_factor: u32,
    /// Window length `h` chosen by the realization.
    pub window: u64,
    /// The intermediate pseudo-schedule and its rounding statistics.
    pub pseudo: PseudoResult,
    /// Metrics of the final schedule.
    pub metrics: ResponseMetrics,
}

/// Run the full Theorem 1 pipeline with augmentation parameter `c >= 1`.
/// Requires unit demands (the paper's Theorem 1 setting; general
/// capacities are fine).
pub fn solve_art(inst: &Instance, c: u32) -> ArtResult {
    assert!(c >= 1, "augmentation parameter c must be >= 1");
    assert!(inst.is_unit_demand(), "Theorem 1 requires unit demands");
    let pseudo = iterative_rounding(inst);
    let realized = realize_schedule(inst, &pseudo.pseudo, c);
    let metrics = fss_core::metrics::evaluate(inst, &realized.schedule);
    ArtResult {
        schedule: realized.schedule,
        capacity_factor: 1 + c,
        window: realized.window,
        pseudo,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_core::gen::{random_instance, GenParams};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn pipeline_produces_valid_augmented_schedule() {
        let mut rng = SmallRng::seed_from_u64(2024);
        let p = GenParams::unit(4, 20, 5);
        let inst = random_instance(&mut rng, &p);
        for c in [1u32, 2, 4] {
            let res = solve_art(&inst, c);
            validate::check(&inst, &res.schedule, &inst.switch.scaled(1 + c)).unwrap();
            assert_eq!(res.capacity_factor, 1 + c);
            assert_eq!(res.metrics.n, inst.n());
        }
    }

    #[test]
    fn total_response_bounded_by_lp_plus_delay() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = GenParams::unit(3, 12, 4);
        let inst = random_instance(&mut rng, &p);
        let res = solve_art(&inst, 2);
        // rho_final <= rho_pseudo + 2h per flow, and pseudo cost is LP-
        // bounded; a generous end-to-end sanity bound:
        let bound = res.pseudo.pseudo.total_response(&inst) + 2 * res.window * inst.n() as u64;
        assert!(
            res.metrics.total_response <= bound,
            "total {} exceeds pseudo + 2hn = {bound}",
            res.metrics.total_response
        );
    }

    #[test]
    #[should_panic(expected = "unit demands")]
    fn non_unit_demand_rejected() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 2));
        b.flow(0, 0, 2, 0);
        let inst = b.build().unwrap();
        let _ = solve_art(&inst, 1);
    }
}
