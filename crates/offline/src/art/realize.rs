//! Theorem 1 realization: pseudo-schedule → valid schedule under a
//! `(1 + c)` capacity blow-up.
//!
//! Time is chopped into windows of `h` rounds. The flows a window receives
//! from the pseudo-schedule form a bipartite multigraph whose per-port
//! degree is at most `c_p·h + O(c_p log n)` (Lemma 3.3). Port replication
//! plus König edge coloring (`fss-matching`) decomposes that graph into
//! `d ≤ h + O(log n)` b-matchings, each loading every port by at most
//! `c_p`. Executing `1 + c` of those classes per round inside the *next*
//! window needs `⌈d/(1+c)⌉ ≤ h` rounds — guaranteed once
//! `h ≥ Θ(log n / c)` — and keeps every per-round port load at
//! `(1+c)·c_p`. Each flow is delayed by at most `2h = O(log n / c)` rounds
//! past its pseudo-round, giving the `1 + O(log n)/c` approximation.
//!
//! The implementation picks `h` adaptively (doubling) rather than deriving
//! the hidden constant: the first `h` for which every window's class count
//! fits is used, and it is `O(log n / c)` by the lemma.

use fss_core::prelude::*;
use fss_matching::{decompose_into_b_matchings, BipartiteGraph};

/// Output of [`realize_schedule`].
#[derive(Debug, Clone)]
pub struct RealizedSchedule {
    /// Valid schedule against `switch.scaled(1 + c)`.
    pub schedule: Schedule,
    /// The window length `h` that was used.
    pub window: u64,
}

/// Convert `pseudo` into a valid schedule on the `(1+c)`-scaled switch.
/// Unit demands required (Theorem 1 setting). Flows assigned to window `j`
/// by the pseudo-schedule execute inside window `j + 1`, so release times
/// are automatically respected.
pub fn realize_schedule(inst: &Instance, pseudo: &PseudoSchedule, c: u32) -> RealizedSchedule {
    assert!(c >= 1, "augmentation parameter c must be >= 1");
    assert!(
        inst.is_unit_demand(),
        "Theorem 1 realization requires unit demands"
    );
    assert_eq!(pseudo.len(), inst.n(), "pseudo-schedule covers every flow");
    let n = inst.n();
    if n == 0 {
        return RealizedSchedule {
            schedule: Schedule::from_rounds(vec![]),
            window: 1,
        };
    }

    let stack = u64::from(c) + 1; // classes executable per round
    let mut h = 1u64;
    loop {
        if let Some(schedule) = try_window(inst, pseudo, h, stack) {
            debug_assert!(
                validate::check(inst, &schedule, &inst.switch.scaled(1 + c)).is_ok(),
                "realized schedule must fit the scaled switch"
            );
            return RealizedSchedule {
                schedule,
                window: h,
            };
        }
        h *= 2;
        assert!(
            h <= 2 * (pseudo.makespan() + n as u64 + 2),
            "window growth runaway: decomposition cannot fail at h >= makespan"
        );
    }
}

/// Realization at a caller-fixed window length `h`; `None` when some
/// window's color classes need more than `h` rounds under the `(1+c)`
/// stack. Exposed for the window-choice ablation bench — prefer
/// [`realize_schedule`], which searches `h` automatically.
pub fn realize_schedule_with_window(
    inst: &Instance,
    pseudo: &PseudoSchedule,
    c: u32,
    h: u64,
) -> Option<RealizedSchedule> {
    assert!(c >= 1 && h >= 1, "c and h must be positive");
    assert!(
        inst.is_unit_demand(),
        "Theorem 1 realization requires unit demands"
    );
    let schedule = try_window(inst, pseudo, h, u64::from(c) + 1)?;
    debug_assert!(validate::check(inst, &schedule, &inst.switch.scaled(1 + c)).is_ok());
    Some(RealizedSchedule {
        schedule,
        window: h,
    })
}

/// Attempt the realization at a fixed window length; `None` when some
/// window needs more than `h` rounds to execute its color classes.
fn try_window(inst: &Instance, pseudo: &PseudoSchedule, h: u64, stack: u64) -> Option<Schedule> {
    let makespan = pseudo.makespan();
    let windows = makespan.div_ceil(h).max(1);
    let mut rounds = vec![0u64; inst.n()];

    let b_left: Vec<u32> = (0..inst.switch.num_inputs() as u32)
        .map(|p| inst.switch.in_cap(p))
        .collect();
    let b_right: Vec<u32> = (0..inst.switch.num_outputs() as u32)
        .map(|q| inst.switch.out_cap(q))
        .collect();

    for j in 0..windows {
        let lo = j * h;
        let hi = lo + h;
        // Flows the pseudo-schedule puts in this window.
        let members: Vec<usize> = (0..inst.n())
            .filter(|&i| {
                let t = pseudo.rounds()[i];
                t >= lo && t < hi
            })
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut g = BipartiteGraph::new(inst.switch.num_inputs(), inst.switch.num_outputs());
        for &i in &members {
            let f = &inst.flows[i];
            g.add_edge(f.src, f.dst);
        }
        let classes = decompose_into_b_matchings(&g, &b_left, &b_right);
        let needed = (classes.len() as u64).div_ceil(stack);
        if needed > h {
            return None;
        }
        // Execute inside window j+1: `stack` classes share each round.
        let base = (j + 1) * h;
        for (k, class) in classes.iter().enumerate() {
            let round = base + k as u64 / stack;
            for &edge in class {
                rounds[members[edge]] = round;
            }
        }
    }
    Some(Schedule::from_rounds(rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::art::iterative_rounding;
    use fss_core::gen::{random_instance, GenParams};
    use rand::{rngs::SmallRng, SeedableRng};

    fn realize_checked(inst: &Instance, c: u32) -> RealizedSchedule {
        let pseudo = iterative_rounding(inst).pseudo;
        let r = realize_schedule(inst, &pseudo, c);
        validate::check(inst, &r.schedule, &inst.switch.scaled(1 + c)).unwrap();
        r
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        let r = realize_schedule(&inst, &PseudoSchedule::from_rounds(vec![]), 1);
        assert!(r.schedule.is_empty());
    }

    #[test]
    fn single_flow_lands_in_next_window() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        b.unit_flow(0, 0, 0);
        let inst = b.build().unwrap();
        let pseudo = PseudoSchedule::from_rounds(vec![0]);
        let r = realize_schedule(&inst, &pseudo, 1);
        // Window 0 is [0, h); execution in window 1 starts at h >= 1.
        assert!(r.schedule.round_of(FlowId(0)) >= 1);
        assert!(r.schedule.round_of(FlowId(0)) <= 2 * r.window);
    }

    #[test]
    fn overloaded_pseudo_round_is_spread_out() {
        // Five flows rammed into pseudo-round 0 on a single unit pair:
        // realization must spread them across the next window(s) under
        // capacity 1 + c = 2 per round.
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        for _ in 0..5 {
            b.unit_flow(0, 0, 0);
        }
        let inst = b.build().unwrap();
        let pseudo = PseudoSchedule::from_rounds(vec![0; 5]);
        let r = realize_schedule(&inst, &pseudo, 1);
        validate::check(&inst, &r.schedule, &inst.switch.scaled(2)).unwrap();
    }

    #[test]
    fn random_instances_all_valid_for_various_c() {
        let mut rng = SmallRng::seed_from_u64(33);
        for &c in &[1u32, 2, 4] {
            let p = GenParams::unit(4, 18, 4);
            let inst = random_instance(&mut rng, &p);
            let r = realize_checked(&inst, c);
            // Delay bound: every flow within 2h of its pseudo round is
            // implied by construction; spot-check the metric is finite and
            // the makespan did not explode.
            assert!(r.schedule.makespan() <= inst.trivial_horizon() + 2 * r.window + r.window);
        }
    }

    #[test]
    fn general_capacities_use_b_matchings() {
        let mut b = InstanceBuilder::new(Switch::new(vec![2, 1], vec![2, 1]));
        for _ in 0..4 {
            b.unit_flow(0, 0, 0);
        }
        b.unit_flow(1, 1, 0);
        b.unit_flow(0, 1, 1);
        let inst = b.build().unwrap();
        let r = realize_checked(&inst, 1);
        assert!(r.schedule.makespan() > 0);
    }

    #[test]
    fn fixed_window_matches_adaptive_when_it_fits() {
        let mut rng = SmallRng::seed_from_u64(44);
        let inst = random_instance(&mut rng, &GenParams::unit(3, 12, 3));
        let pseudo = iterative_rounding(&inst).pseudo;
        let adaptive = realize_schedule(&inst, &pseudo, 2);
        let fixed = realize_schedule_with_window(&inst, &pseudo, 2, adaptive.window)
            .expect("adaptive window must fit by definition");
        assert_eq!(fixed.schedule, adaptive.schedule);
        // Larger windows also fit (coarser chopping only lowers degrees
        // per window relative to h).
        assert!(realize_schedule_with_window(&inst, &pseudo, 2, adaptive.window * 4).is_some());
    }

    #[test]
    fn too_small_fixed_window_fails_cleanly() {
        // Five conflicting flows in one pseudo round cannot execute within
        // a 1-round window at stack 2.
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        for _ in 0..5 {
            b.unit_flow(0, 0, 0);
        }
        let inst = b.build().unwrap();
        let pseudo = PseudoSchedule::from_rounds(vec![0; 5]);
        assert!(realize_schedule_with_window(&inst, &pseudo, 1, 1).is_none());
        assert!(realize_schedule_with_window(&inst, &pseudo, 1, 4).is_some());
    }

    #[test]
    fn larger_c_never_needs_a_larger_window() {
        let mut rng = SmallRng::seed_from_u64(99);
        let p = GenParams::unit(3, 15, 2);
        let inst = random_instance(&mut rng, &p);
        let pseudo = iterative_rounding(&inst).pseudo;
        let h1 = realize_schedule(&inst, &pseudo, 1).window;
        let h4 = realize_schedule(&inst, &pseudo, 4).window;
        assert!(h4 <= h1);
    }
}
