//! The FS-ART lower-bound LP (1)–(4), after Garg–Kumar.
//!
//! Variables `b_{e,t}` give the amount of flow `e` served in round `t`;
//! the fractional response `Δ_e = Σ_t ((t - r_e)/d_e + 1/(2κ_e)) b_{e,t}`
//! satisfies `Σ_e Δ_e <= Σ_e ρ_e` for every schedule (Lemma 3.1), so the
//! LP optimum is the baseline the paper's Figure 6 compares heuristics
//! against.

use fss_core::prelude::*;
use fss_lp::{Cmp, LpBuilder, LpStatus};

/// Failures of the LP bound computation.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtLpError {
    /// Simplex pivot budget exhausted.
    Solver(String),
    /// The (windowed) LP admits no fractional schedule — the window is too
    /// small; retry with a larger one.
    WindowInfeasible,
}

impl std::fmt::Display for ArtLpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtLpError::Solver(m) => write!(f, "LP solver failure: {m}"),
            ArtLpError::WindowInfeasible => write!(f, "window too small for a fractional schedule"),
        }
    }
}

impl std::error::Error for ArtLpError {}

/// A sufficient horizon: some optimal schedule uses makespan at most
/// `max_release + n` (idle rounds past the last release can be compacted
/// without increasing any response time), so restricting the LP to this
/// horizon preserves the lower-bound property.
pub fn default_horizon(inst: &Instance) -> u64 {
    inst.max_release() + inst.n() as u64 + 1
}

/// Optimal value of LP (1)–(4): a lower bound on the total response time
/// of any schedule of `inst`. `horizon` overrides `default_horizon`
/// (must be at least as large to keep the bound valid — callers shrinking
/// it get a *heuristic* bound, which the experiment runner never does).
pub fn art_lp_lower_bound(inst: &Instance, horizon: Option<u64>) -> Result<f64, ArtLpError> {
    art_lp_impl(inst, horizon, None)
}

/// Windowed variant: each flow's variables are restricted to
/// `[r_e, r_e + window)`. The optimum lower-bounds every schedule whose
/// maximum response time is at most `window` — the form used for the
/// larger Figure 6 cells, where the full LP (the paper spent >3 h of
/// Gurobi time per cell) is out of reach for a dense simplex. Callers pick
/// `window` comfortably above the best heuristic's maximum response and
/// report the choice (see EXPERIMENTS.md).
pub fn art_lp_lower_bound_windowed(inst: &Instance, window: u64) -> Result<f64, ArtLpError> {
    assert!(window >= 1, "window must allow at least one round");
    art_lp_impl(inst, None, Some(window))
}

fn art_lp_impl(
    inst: &Instance,
    horizon: Option<u64>,
    window: Option<u64>,
) -> Result<f64, ArtLpError> {
    if inst.n() == 0 {
        return Ok(0.0);
    }
    let h = horizon.unwrap_or_else(|| default_horizon(inst));
    let mut lp = LpBuilder::minimize();

    // Variables per flow and round, with the fractional-response objective.
    let mut vars: Vec<Vec<fss_lp::VarId>> = Vec::with_capacity(inst.n());
    for f in &inst.flows {
        let kappa = f64::from(inst.switch.kappa(f.src, f.dst));
        let de = f64::from(f.demand);
        let hi = match window {
            Some(w) => (f.release + w).min(h),
            None => h,
        };
        let mut row = Vec::new();
        for t in f.release..hi {
            let coef = (t - f.release) as f64 / de + 1.0 / (2.0 * kappa);
            row.push(lp.var(coef));
        }
        vars.push(row);
    }
    // (2): every flow completed across rounds.
    for (i, f) in inst.flows.iter().enumerate() {
        let terms: Vec<_> = vars[i].iter().map(|&v| (v, 1.0)).collect();
        lp.constraint(&terms, Cmp::Ge, f64::from(f.demand));
    }
    // (3): port capacity per round. Sparse accumulation.
    use std::collections::HashMap;
    let mut rows: HashMap<(bool, u32, u64), Vec<(fss_lp::VarId, f64)>> = HashMap::new();
    for (i, f) in inst.flows.iter().enumerate() {
        for (k, &v) in vars[i].iter().enumerate() {
            let t = f.release + k as u64;
            rows.entry((true, f.src, t)).or_default().push((v, 1.0));
            rows.entry((false, f.dst, t)).or_default().push((v, 1.0));
        }
    }
    let mut keys: Vec<_> = rows.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let (is_in, p, _) = key;
        let cap = if is_in {
            inst.switch.in_cap(p)
        } else {
            inst.switch.out_cap(p)
        };
        lp.constraint(&rows[&key], Cmp::Le, f64::from(cap));
    }

    let sol = lp.solve().map_err(|e| ArtLpError::Solver(e.to_string()))?;
    match sol.status {
        LpStatus::Optimal => Ok(sol.objective),
        // The LP is always feasible at the default horizon (greedy fits);
        // a caller-supplied horizon or window may be too small.
        LpStatus::Infeasible => Err(ArtLpError::WindowInfeasible),
        status => Err(ArtLpError::Solver(format!(
            "unexpected LP status {status:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::min_total_response;
    use fss_core::gen::{random_instance, GenParams};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn empty_instance_zero_bound() {
        let inst = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        assert_eq!(art_lp_lower_bound(&inst, None).unwrap(), 0.0);
    }

    #[test]
    fn single_flow_bound_is_half() {
        // One unit flow, unit capacity: Delta = 0 + 1/2 = 0.5 <= rho = 1.
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        b.unit_flow(0, 0, 0);
        let inst = b.build().unwrap();
        let bound = art_lp_lower_bound(&inst, None).unwrap();
        assert!((bound - 0.5).abs() < 1e-6);
    }

    #[test]
    fn lower_bounds_exact_optimum_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(101);
        for _ in 0..8 {
            let p = GenParams::unit(3, 7, 3);
            let inst = random_instance(&mut rng, &p);
            let bound = art_lp_lower_bound(&inst, None).unwrap();
            let (opt, _) = min_total_response(&inst);
            assert!(
                bound <= opt as f64 + 1e-6,
                "LP bound {bound} exceeds exact optimum {opt}"
            );
        }
    }

    #[test]
    fn bound_grows_with_congestion() {
        // k conflicting flows on one pair: LP must pay ~k^2/2; compare
        // against the exact serialized cost k(k+1)/2.
        for k in 1..=4u32 {
            let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
            for _ in 0..k {
                b.unit_flow(0, 0, 0);
            }
            let inst = b.build().unwrap();
            let bound = art_lp_lower_bound(&inst, None).unwrap();
            let exact = f64::from(k * (k + 1)) / 2.0;
            assert!(bound <= exact + 1e-6);
            // The LP's fractional optimum on a serialized port is exactly
            // sum_{j} (j - 1 + 1/2) = k^2 / 2.
            assert!((bound - f64::from(k * k) / 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn windowed_bound_sandwiched_between_full_lp_and_optimum() {
        let mut rng = SmallRng::seed_from_u64(66);
        for _ in 0..4 {
            let p = GenParams::unit(3, 7, 3);
            let inst = random_instance(&mut rng, &p);
            let full = art_lp_lower_bound(&inst, None).unwrap();
            let greedy = crate::greedy::greedy_schedule(&inst);
            let gm = fss_core::metrics::evaluate(&inst, &greedy);
            // Any schedule's per-flow response is at most its total, and
            // OPT's total is at most greedy's — so a window of greedy's
            // total response provably contains an optimal schedule.
            let w = gm.total_response + 1;
            let windowed = art_lp_lower_bound_windowed(&inst, w).unwrap();
            assert!(windowed >= full - 1e-6, "restriction cannot lower the LP");
            let (opt, _) = min_total_response(&inst);
            assert!(
                windowed <= opt as f64 + 1e-6,
                "windowed bound {windowed} above optimum {opt} at window {w}"
            );
        }
    }

    #[test]
    fn too_small_window_reports_infeasible() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 0, 0);
        let inst = b.build().unwrap();
        assert!(matches!(
            art_lp_lower_bound_windowed(&inst, 1),
            Err(ArtLpError::WindowInfeasible)
        ));
        assert!(art_lp_lower_bound_windowed(&inst, 2).is_ok());
    }

    #[test]
    fn mixed_demands_and_capacities() {
        let mut b = InstanceBuilder::new(Switch::new(vec![2, 2], vec![2, 2]));
        b.flow(0, 0, 2, 0);
        b.flow(0, 1, 1, 0);
        b.flow(1, 1, 2, 1);
        let inst = b.build().unwrap();
        let bound = art_lp_lower_bound(&inst, None).unwrap();
        assert!(bound > 0.0);
        let greedy = crate::greedy::greedy_schedule(&inst);
        let total = fss_core::metrics::evaluate(&inst, &greedy).total_response;
        assert!(bound <= total as f64 + 1e-6);
    }
}
