//! Exact optimal solvers for tiny instances (branch and bound).
//!
//! These exponential-time solvers are the test oracles of the workspace:
//! they certify the optimal total/maximum response time on hand-sized
//! instances, which lets the test-suite verify the approximation guarantees
//! of the polynomial algorithms and the claimed values of the hardness and
//! lower-bound gadgets (Theorem 2, Figure 4).

use fss_core::prelude::*;

/// Upper limit on `n` accepted by the exact solvers (guards against
/// accidentally exponential test times).
pub const MAX_EXACT_FLOWS: usize = 16;

/// Minimum total response time over all feasible schedules, with the
/// argmin schedule. Search space: rounds `re..re + horizon_slack + n`.
pub fn min_total_response(inst: &Instance) -> (u64, Schedule) {
    branch_and_bound(inst, false)
}

/// Minimum maximum response time over all feasible schedules, with an
/// optimal schedule.
pub fn min_max_response(inst: &Instance) -> (u64, Schedule) {
    branch_and_bound(inst, true)
}

fn branch_and_bound(inst: &Instance, minimize_max: bool) -> (u64, Schedule) {
    let n = inst.n();
    assert!(
        n <= MAX_EXACT_FLOWS,
        "exact solver limited to {MAX_EXACT_FLOWS} flows"
    );
    if n == 0 {
        return (0, Schedule::from_rounds(vec![]));
    }
    // Incumbent from the greedy baseline.
    let greedy = crate::greedy::greedy_schedule(inst);
    let gm = fss_core::metrics::evaluate(inst, &greedy);
    let mut best_cost = if minimize_max {
        gm.max_response
    } else {
        gm.total_response
    };
    let mut best = greedy.clone();

    // Branch on flows in release order; each flow tries rounds
    // re..=latest, where latest is bounded by the incumbent cost.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (inst.flows[i].release, i));

    // Sparse per-(port, round) loads for the partial assignment.
    #[derive(Default)]
    struct State {
        rounds: Vec<u64>,
        in_load: std::collections::HashMap<(u32, u64), u32>,
        out_load: std::collections::HashMap<(u32, u64), u32>,
    }
    let mut st = State {
        rounds: vec![0; n],
        ..Default::default()
    };

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        inst: &Instance,
        order: &[usize],
        depth: usize,
        partial_cost: u64, // total-so-far or max-so-far
        minimize_max: bool,
        st: &mut State,
        best_cost: &mut u64,
        best: &mut Schedule,
    ) {
        if depth == order.len() {
            if partial_cost < *best_cost {
                *best_cost = partial_cost;
                *best = Schedule::from_rounds(st.rounds.clone());
            }
            return;
        }
        let i = order[depth];
        let f = inst.flows[i];
        // Admissible rounds: response time must keep the cost below the
        // incumbent. For total: rho_i <= best - partial - (remaining - 1)
        // since every remaining flow costs at least 1. For max: rho_i <
        // best.
        let remaining_after = (order.len() - depth - 1) as u64;
        let max_rho = if minimize_max {
            if *best_cost == 0 {
                return;
            }
            *best_cost - 1
        } else {
            if *best_cost <= partial_cost + remaining_after {
                return;
            }
            *best_cost - partial_cost - remaining_after - 1
        };
        if max_rho == 0 {
            return; // response time is at least 1
        }
        for rho in 1..=max_rho {
            let t = f.release + rho - 1;
            let in_key = (f.src, t);
            let out_key = (f.dst, t);
            let in_used = st.in_load.get(&in_key).copied().unwrap_or(0);
            let out_used = st.out_load.get(&out_key).copied().unwrap_or(0);
            if in_used + f.demand > inst.switch.in_cap(f.src)
                || out_used + f.demand > inst.switch.out_cap(f.dst)
            {
                continue;
            }
            *st.in_load.entry(in_key).or_insert(0) += f.demand;
            *st.out_load.entry(out_key).or_insert(0) += f.demand;
            st.rounds[i] = t;
            let cost = if minimize_max {
                partial_cost.max(rho)
            } else {
                partial_cost + rho
            };
            dfs(
                inst,
                order,
                depth + 1,
                cost,
                minimize_max,
                st,
                best_cost,
                best,
            );
            *st.in_load.get_mut(&in_key).unwrap() -= f.demand;
            *st.out_load.get_mut(&out_key).unwrap() -= f.demand;
        }
    }

    dfs(
        inst,
        &order,
        0,
        0,
        minimize_max,
        &mut st,
        &mut best_cost,
        &mut best,
    );
    debug_assert!(validate::check(inst, &best, &inst.switch).is_ok());
    (best_cost, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance_costs_zero() {
        let inst = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        assert_eq!(min_total_response(&inst).0, 0);
        assert_eq!(min_max_response(&inst).0, 0);
    }

    #[test]
    fn single_flow_cost_one() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        b.unit_flow(0, 0, 3);
        let inst = b.build().unwrap();
        assert_eq!(min_total_response(&inst).0, 1);
        assert_eq!(min_max_response(&inst).0, 1);
    }

    #[test]
    fn two_conflicting_flows_serialize() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 1, 0);
        let inst = b.build().unwrap();
        assert_eq!(min_total_response(&inst).0, 3); // 1 + 2
        assert_eq!(min_max_response(&inst).0, 2);
    }

    #[test]
    fn optimal_beats_or_matches_greedy() {
        use fss_core::gen::{random_instance, GenParams};
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10 {
            let p = GenParams::unit(3, 7, 3);
            let inst = random_instance(&mut rng, &p);
            let greedy = crate::greedy::greedy_schedule(&inst);
            let gm = fss_core::metrics::evaluate(&inst, &greedy);
            let (opt_tot, s1) = min_total_response(&inst);
            let (opt_max, s2) = min_max_response(&inst);
            assert!(opt_tot <= gm.total_response);
            assert!(opt_max <= gm.max_response);
            validate::check(&inst, &s1, &inst.switch).unwrap();
            validate::check(&inst, &s2, &inst.switch).unwrap();
            assert_eq!(
                fss_core::metrics::evaluate(&inst, &s1).total_response,
                opt_tot
            );
            assert_eq!(
                fss_core::metrics::evaluate(&inst, &s2).max_response,
                opt_max
            );
        }
    }

    #[test]
    fn interleaving_releases() {
        // Flow released later can still force waiting.
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 0, 1);
        let inst = b.build().unwrap();
        // One port pair: rounds 0,1,2 serialized. Responses 1,2,2 in the
        // best order (third flow released at 1 runs at 2).
        assert_eq!(min_total_response(&inst).0, 5);
        assert_eq!(min_max_response(&inst).0, 2);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn too_large_instances_rejected() {
        let mut b = InstanceBuilder::new(Switch::uniform(20, 20, 1));
        for i in 0..20 {
            b.unit_flow(i, i, 0);
        }
        let inst = b.build().unwrap();
        let _ = min_total_response(&inst);
    }
}
