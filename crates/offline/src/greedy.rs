#![allow(clippy::needless_range_loop)] // parallel-array index loops are clearer here
//! FIFO list scheduling: a simple feasible baseline.
//!
//! Rounds advance one at a time; pending flows are considered oldest
//! release first (ties by flow id) and packed greedily into the current
//! round subject to the remaining port capacities. Every flow is eventually
//! scheduled, so the resulting makespan is a valid finite horizon for the
//! LP formulations.

use fss_core::prelude::*;

/// Greedily schedule all flows of `inst`. Always succeeds; returns a
/// feasible [`Schedule`] (validated in tests against `inst.switch`).
pub fn greedy_schedule(inst: &Instance) -> Schedule {
    let n = inst.n();
    let mut rounds = vec![0u64; n];
    if n == 0 {
        return Schedule::from_rounds(rounds);
    }
    // Flow ids sorted by (release, id): FIFO order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (inst.flows[i].release, i));

    let mut next = 0usize; // first unscheduled index in `order`
    let mut pending: Vec<usize> = Vec::new();
    let mut t = inst.flows[order[0]].release;
    let m_in = inst.switch.num_inputs();
    let m_out = inst.switch.num_outputs();
    let mut in_left = vec![0u32; m_in];
    let mut out_left = vec![0u32; m_out];

    while next < n || !pending.is_empty() {
        // Release everything up to round t.
        while next < n && inst.flows[order[next]].release <= t {
            pending.push(order[next]);
            next += 1;
        }
        if pending.is_empty() {
            // Jump to the next release.
            t = inst.flows[order[next]].release;
            continue;
        }
        for p in 0..m_in {
            in_left[p] = inst.switch.in_cap(p as u32);
        }
        for q in 0..m_out {
            out_left[q] = inst.switch.out_cap(q as u32);
        }
        // FIFO pass over pending flows.
        let mut still_pending = Vec::with_capacity(pending.len());
        for &i in &pending {
            let f = &inst.flows[i];
            if f.demand <= in_left[f.src as usize] && f.demand <= out_left[f.dst as usize] {
                in_left[f.src as usize] -= f.demand;
                out_left[f.dst as usize] -= f.demand;
                rounds[i] = t;
            } else {
                still_pending.push(i);
            }
        }
        pending = still_pending;
        t += 1;
    }
    Schedule::from_rounds(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_core::gen::{random_instance, GenParams};
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        let s = greedy_schedule(&inst);
        assert!(s.is_empty());
    }

    #[test]
    fn serializes_conflicting_flows() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 1, 0);
        b.unit_flow(0, 0, 0);
        let inst = b.build().unwrap();
        let s = greedy_schedule(&inst);
        validate::check(&inst, &s, &inst.switch).unwrap();
        assert_eq!(s.makespan(), 3); // all share input port 0
    }

    #[test]
    fn parallel_flows_run_together() {
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(1, 1, 0);
        let inst = b.build().unwrap();
        let s = greedy_schedule(&inst);
        validate::check(&inst, &s, &inst.switch).unwrap();
        assert_eq!(s.makespan(), 1);
    }

    #[test]
    fn respects_release_times_with_gaps() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        b.unit_flow(0, 0, 5);
        b.unit_flow(0, 0, 0);
        let inst = b.build().unwrap();
        let s = greedy_schedule(&inst);
        validate::check(&inst, &s, &inst.switch).unwrap();
        assert_eq!(s.round_of(FlowId(1)), 0);
        assert_eq!(s.round_of(FlowId(0)), 5);
    }

    #[test]
    fn handles_mixed_demands_and_capacities() {
        let mut b = InstanceBuilder::new(Switch::new(vec![3, 2], vec![4, 1]));
        b.flow(0, 0, 3, 0);
        b.flow(0, 0, 1, 0); // input 0 full in round 0 -> waits
        b.flow(1, 1, 1, 0);
        b.flow(1, 0, 2, 1);
        let inst = b.build().unwrap();
        let s = greedy_schedule(&inst);
        validate::check(&inst, &s, &inst.switch).unwrap();
    }

    #[test]
    fn always_feasible_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(31);
        for seed in 0..25 {
            let _ = seed;
            let p = GenParams {
                m: 4,
                m_out: 4,
                cap: 2,
                n: 30,
                max_demand: 2,
                max_release: 8,
            };
            let inst = random_instance(&mut rng, &p);
            let s = greedy_schedule(&inst);
            validate::check(&inst, &s, &inst.switch).unwrap();
            // Horizon sanity: at least one flow is placed per non-idle
            // round (an empty round always fits the oldest pending flow).
            assert!(s.makespan() <= inst.max_release() + inst.n() as u64);
        }
    }
}
