//! Criterion bench of single Figure 7 cells: the binary-searched LP
//! (19)–(21) bound and the MinRTime heuristic at congestion levels that
//! bracket the paper's grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fss_core::Instance;
use fss_offline::mrt::min_feasible_rho;
use fss_online::{run_policy, MinRTime};
use fss_sim::{poisson_workload, WorkloadParams};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn workload(per_port: f64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(0xf17);
    poisson_workload(
        &mut rng,
        &WorkloadParams {
            m: 10,
            mean_arrivals: per_port * 10.0,
            rounds: 8,
        },
    )
}

fn bench_rho_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for &cong in &[0.5f64, 1.0, 2.0] {
        let inst = workload(cong);
        group.bench_with_input(
            BenchmarkId::new("min_feasible_rho", format!("{cong}")),
            &inst,
            |b, inst| b.iter(|| black_box(min_feasible_rho(inst, None).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("minrtime_heuristic", format!("{cong}")),
            &inst,
            |b, inst| b.iter(|| black_box(run_policy(inst, &mut MinRTime::default()))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rho_search);
criterion_main!(benches);
