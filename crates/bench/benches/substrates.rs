//! Criterion micro-benchmarks of the substrate crates: simplex solves,
//! Hopcroft–Karp, Hungarian, König edge coloring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fss_lp::{Cmp, LpBuilder};
use fss_matching::{edge_coloring, max_cardinality_matching, max_weight_matching, BipartiteGraph};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::hint::black_box;

fn random_graph(nl: usize, nr: usize, edges: usize, seed: u64) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = BipartiteGraph::new(nl, nr);
    for _ in 0..edges {
        g.add_edge(rng.gen_range(0..nl as u32), rng.gen_range(0..nr as u32));
    }
    g
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for &size in &[10usize, 30, 60] {
        // A transportation-style LP: size x size variables, 2*size rows.
        group.bench_with_input(BenchmarkId::new("transportation", size), &size, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(7);
            let costs: Vec<f64> = (0..n * n).map(|_| rng.gen_range(1.0..10.0)).collect();
            b.iter(|| {
                let mut lp = LpBuilder::minimize();
                let vars: Vec<_> = costs.iter().map(|&c| lp.var(c)).collect();
                for i in 0..n {
                    let row: Vec<_> = (0..n).map(|j| (vars[i * n + j], 1.0)).collect();
                    lp.constraint(&row, Cmp::Eq, 1.0);
                }
                for j in 0..n {
                    let col: Vec<_> = (0..n).map(|i| (vars[i * n + j], 1.0)).collect();
                    lp.constraint(&col, Cmp::Le, 1.0);
                }
                black_box(lp.solve().unwrap())
            });
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &m in &[50usize, 150] {
        let g = random_graph(m, m, m * 4, 11);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", m), &g, |b, g| {
            b.iter(|| black_box(max_cardinality_matching(g)));
        });
        let weights: Vec<f64> = {
            let mut rng = SmallRng::seed_from_u64(13);
            (0..g.num_edges())
                .map(|_| rng.gen_range(0.0..20.0))
                .collect()
        };
        group.bench_with_input(BenchmarkId::new("hungarian", m), &g, |b, g| {
            b.iter(|| black_box(max_weight_matching(g, &weights)));
        });
    }
    group.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("koenig");
    for &m in &[50usize, 150] {
        let g = random_graph(m, m, m * 6, 17);
        group.bench_with_input(BenchmarkId::new("edge_coloring", m), &g, |b, g| {
            b.iter(|| black_box(edge_coloring(g)));
        });
    }
    group.finish();
}

fn bench_rounding(c: &mut Criterion) {
    use fss_rounding::{beck_fiala, iterative_relaxation, IterativeOptions, RoundingProblem};
    let mut group = c.benchmark_group("rounding");
    group.sample_size(10);
    for &groups_n in &[20usize, 60] {
        // Each group picks one of 3 slots; capacity rows couple them.
        let opts_n = 3usize;
        let num_vars = groups_n * opts_n;
        let groups: Vec<Vec<usize>> = (0..groups_n)
            .map(|g| (g * opts_n..(g + 1) * opts_n).collect())
            .collect();
        let mut rng = SmallRng::seed_from_u64(31);
        let mut capacities = Vec::new();
        for _ in 0..groups_n {
            let mut terms = Vec::new();
            for v in 0..num_vars {
                if rng.gen_bool(0.2) {
                    terms.push((v, 1.0));
                }
            }
            if terms.is_empty() {
                continue;
            }
            let rhs = terms.len() as f64 / opts_n as f64;
            capacities.push((terms, rhs.ceil()));
        }
        let p = RoundingProblem {
            num_vars,
            groups,
            capacities,
        };
        let x0 = vec![1.0 / opts_n as f64; num_vars];
        group.bench_with_input(BenchmarkId::new("beck_fiala", groups_n), &p, |b, p| {
            b.iter(|| black_box(beck_fiala(p, &x0)));
        });
        group.bench_with_input(
            BenchmarkId::new("iterative_relaxation", groups_n),
            &p,
            |b, p| {
                b.iter(|| {
                    black_box(iterative_relaxation(p, &IterativeOptions::for_dmax(1)).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simplex, bench_matching, bench_coloring, bench_rounding
}
criterion_main!(benches);
