//! Work-stealing vs chunked scheduling on skewed cell grids.
//!
//! The orchestrator's cell lists are skewed by construction: a fig6/fig7
//! grid mixes trivial `M = m/3` cells with `M = 4m` cells ~50x heavier,
//! and the old contiguous-chunk splitter parked all the heavy cells on
//! one worker. This bench measures both executors on (a) a synthetic
//! spin grid with the heavy items up front and (b) a real skewed
//! experiment grid (fig6 smoke heuristic cells).
//!
//! ```sh
//! cargo bench -p fss-bench --bench par_scheduler
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rayon::exec::{run_chunked, run_dynamic};

/// Spin for roughly `units` work quanta (CPU-bound, optimizer-proof).
fn spin(units: u64) -> u64 {
    let mut acc = 0x9e3779b97f4a7c15u64;
    for i in 0..units * 20_000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn skewed_spin_grid(c: &mut Criterion) {
    // 32 items; the first 4 are 50x heavier — the adversarial layout for
    // a contiguous split (all land in worker 0's chunk).
    let items: Vec<u64> = (0..32).map(|i| if i < 4 { 50 } else { 1 }).collect();
    let mut g = c.benchmark_group("skewed_spin_grid");
    g.sample_size(10);
    g.bench_function("chunked", |b| {
        b.iter(|| run_chunked(black_box(&items), &|&u| spin(u)))
    });
    g.bench_function("work_stealing", |b| {
        b.iter(|| run_dynamic(black_box(&items), &|&u| spin(u)))
    });
    g.finish();
}

fn skewed_experiment_grid(c: &mut Criterion) {
    // A real orchestrator workload: the fig6 smoke heuristic cells, in
    // declaration order (the heavy M = 4m cells cluster by policy).
    let scale = fss_bench::Scale {
        smoke: true,
        trials: Some(2),
        ..fss_bench::Scale::default()
    };
    let exp = fss_bench::select(Some("fig6")).pop().expect("registered");
    let cells: Vec<fss_bench::CellSpec> = (exp.build)(&scale)
        .into_iter()
        .filter(|c| !c.id.contains("/lp/"))
        .collect();
    let mut g = c.benchmark_group("fig6_smoke_cells");
    g.sample_size(10);
    g.bench_function("chunked", |b| {
        b.iter(|| run_chunked(black_box(&cells), &|c: &fss_bench::CellSpec| (c.run)()))
    });
    g.bench_function("work_stealing", |b| {
        b.iter(|| run_dynamic(black_box(&cells), &|c: &fss_bench::CellSpec| (c.run)()))
    });
    g.finish();
}

criterion_group!(benches, skewed_spin_grid, skewed_experiment_grid);
criterion_main!(benches);
