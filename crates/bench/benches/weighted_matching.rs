//! The weighted-path benchmark: incremental weighted matching vs the
//! from-scratch batch Hungarian, on the paper's stress cells (`m = 150`,
//! `T = 40` arrival rounds, `M ∈ {2m, 4m}` mean arrivals per round).
//!
//! Three executions per policy and cell:
//!
//! * `batch` — the legacy round loop with the from-scratch policy
//!   (`BatchMinRTime` / `BatchMaxWeight`): rebuilds the waiting
//!   multigraph and solves a dense `O(k^3)` Hungarian every round;
//! * `engine` — `fss_engine::run_builtin`: the event-driven drive over
//!   [`fss_engine::IncrementalWeightedMatcher`], carrying duals and the
//!   assignment across rounds;
//! * `loop+inc` — the legacy round loop with the *incremental* policy:
//!   same solver state machine as the engine, fed by scanning the
//!   waiting vector (isolates the event-driven drive's share of the
//!   win).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fss_core::Instance;
use fss_engine::{run_builtin, BuiltinPolicy};
use fss_online::{run_policy, BatchMaxWeight, BatchMinRTime, MaxWeight, MinRTime};
use fss_sim::{poisson_workload, WorkloadParams};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

const M_SWITCH: usize = 150;
const T_ROUNDS: u64 = 40;

fn cell(mean_arrivals: f64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(0x004e_9112);
    poisson_workload(
        &mut rng,
        &WorkloadParams {
            m: M_SWITCH,
            mean_arrivals,
            rounds: T_ROUNDS,
        },
    )
}

fn bench_minrtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("minrtime_m150_T40");
    group.sample_size(10);
    for mult in [2u32, 4] {
        let inst = cell(f64::from(mult) * M_SWITCH as f64);
        let label = format!("M={}m_n={}", mult, inst.n());
        group.bench_with_input(BenchmarkId::new("batch", &label), &inst, |b, inst| {
            b.iter(|| black_box(run_policy(inst, &mut BatchMinRTime::default())))
        });
        group.bench_with_input(BenchmarkId::new("engine", &label), &inst, |b, inst| {
            b.iter(|| black_box(run_builtin(inst, BuiltinPolicy::MinRTime)))
        });
        group.bench_with_input(BenchmarkId::new("loop+inc", &label), &inst, |b, inst| {
            b.iter(|| black_box(run_policy(inst, &mut MinRTime::default())))
        });
    }
    group.finish();
}

fn bench_maxweight(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxweight_m150_T40");
    group.sample_size(10);
    for mult in [2u32, 4] {
        let inst = cell(f64::from(mult) * M_SWITCH as f64);
        let label = format!("M={}m_n={}", mult, inst.n());
        group.bench_with_input(BenchmarkId::new("batch", &label), &inst, |b, inst| {
            b.iter(|| black_box(run_policy(inst, &mut BatchMaxWeight::default())))
        });
        group.bench_with_input(BenchmarkId::new("engine", &label), &inst, |b, inst| {
            b.iter(|| black_box(run_builtin(inst, BuiltinPolicy::MaxWeight)))
        });
        group.bench_with_input(BenchmarkId::new("loop+inc", &label), &inst, |b, inst| {
            b.iter(|| black_box(run_policy(inst, &mut MaxWeight::default())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minrtime, bench_maxweight);
criterion_main!(benches);
