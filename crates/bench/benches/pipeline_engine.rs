//! Pipelined multi-core engine vs the sequential round loop.
//!
//! Two views of the same knob:
//!
//! - `pipeline_stream`: one long Poisson stream through
//!   `run_stream_cores` at 1/2/4 cores — the dataflow-staged round loop
//!   itself (ingest → shard update → match → dispatch).
//! - `saturation_cell`: the full-tier saturation cell (`m = 20`,
//!   `T = 5000`, 4 trials — the CI speedup floor's cell) through
//!   `saturation_sweep_cores` at 1 vs 4 cores — trial-level fan-out.
//!
//! Results are bit-identical at every cores level (the differential
//! suites assert it), so these curves measure wall time only.
//!
//! ```sh
//! cargo bench -p fss-bench --bench pipeline_engine
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use fss_engine::{run_stream_cores, BuiltinPolicy, EngineMode, EngineTelemetry, PoissonSource};
use fss_sim::{saturation_sweep_cores, PolicyKind};

fn pipeline_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_stream");
    g.sample_size(10);
    for mode in [
        EngineMode::Incremental,
        EngineMode::Exact(BuiltinPolicy::MaxWeight),
    ] {
        for cores in [1usize, 2, 4] {
            let label = match mode {
                EngineMode::Incremental => "incremental",
                _ => "maxweight",
            };
            g.bench_function(format!("{label}/m20/T2000/cores{cores}"), |b| {
                b.iter(|| {
                    run_stream_cores(
                        PoissonSource::new(20, 20.0, Some(2_000), 0x5a7),
                        mode,
                        cores,
                        &mut EngineTelemetry::disabled(),
                        |_, _, _| {},
                    )
                })
            });
        }
    }
    g.finish();
}

fn saturation_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("saturation_cell");
    g.sample_size(10);
    for cores in [1usize, 4] {
        g.bench_function(format!("maxweight/lam1.0/cores{cores}"), |b| {
            b.iter(|| {
                saturation_sweep_cores(
                    PolicyKind::MaxWeight,
                    20,
                    5_000,
                    &[1.0],
                    4,
                    0x5a7,
                    cores,
                    &mut EngineTelemetry::disabled(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, pipeline_stream, saturation_cell);
criterion_main!(benches);
