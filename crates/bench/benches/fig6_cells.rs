//! Criterion bench of single Figure 6 cells: one heuristic grid cell and
//! one LP-bound cell at smoke size, so regressions in the end-to-end
//! experiment path show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use fss_sim::{lp_bounds_grid, run_grid, ExperimentConfig, PolicyKind};
use std::hint::black_box;

fn cell_cfg() -> ExperimentConfig {
    ExperimentConfig {
        m: 10,
        m_values: vec![10.0],
        t_values: vec![8],
        trials: 2,
        seed: 0xf16,
        policies: PolicyKind::PAPER_TRIO.to_vec(),
    }
}

fn bench_heuristic_cell(c: &mut Criterion) {
    let cfg = cell_cfg();
    c.bench_function("fig6/heuristic_cell_10x10_T8", |b| {
        b.iter(|| black_box(run_grid(&cfg)))
    });
}

fn bench_lp_cell(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        trials: 1,
        ..cell_cfg()
    };
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("lp_bound_cell_10x10_T8", |b| {
        b.iter(|| black_box(lp_bounds_grid(&cfg, Some(12))))
    });
    group.finish();
}

criterion_group!(benches, bench_heuristic_cell, bench_lp_cell);
criterion_main!(benches);
