//! Engine vs legacy runner on the paper's stress cells: `m = 150`,
//! `M ∈ {m, 2m, 4m}` mean arrivals per round, `T = 40` arrival rounds
//! (§5.2.1). Three executions per cell:
//!
//! * `legacy` — `fss_online::run_policy` (round-by-round, cold
//!   Hopcroft–Karp over the full waiting multigraph);
//! * `engine` — `fss_engine::run_builtin` exact mode (identical
//!   schedule, dedup-compressed HK + reused scratch);
//! * `incremental` — `fss_engine::run_incremental` (support-graph
//!   matching maintained across rounds).
//!
//! A `MinRTime` trio at `M = 4m` shows the weighted path: the from-scratch
//! batch Hungarian (`BatchMinRTime`) vs the engine's incremental weighted
//! drive (see `weighted_matching.rs` for the full weighted grid).
//!
//! The `telemetry_overhead` group measures the observability tax on the
//! same stress cells: `run_builtin_telemetry` with a disabled handle vs
//! an enabled one. The disabled run *is* the production hot path
//! (`run_builtin` delegates to it), so the enabled/disabled delta is
//! the full cost of instrumentation — target <= 5% on the heavy cells.
//! Two flight cases bracket span tracing the same way: `flight_off`
//! (an explicitly attached disabled `FlightHandle` — must be
//! indistinguishable from `disabled`, the measured-zero claim) and
//! `flight_on` (a live recorder capturing stage spans into per-thread
//! rings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fss_core::Instance;
use fss_engine::{run_builtin, run_builtin_telemetry, run_incremental, BuiltinPolicy};
use fss_online::{run_policy, BatchMinRTime, MaxCard, MinRTime};
use fss_sim::{poisson_workload, WorkloadParams};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

const M_SWITCH: usize = 150;
const T_ROUNDS: u64 = 40;

fn cell(mean_arrivals: f64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(0x004e_9112);
    poisson_workload(
        &mut rng,
        &WorkloadParams {
            m: M_SWITCH,
            mean_arrivals,
            rounds: T_ROUNDS,
        },
    )
}

fn bench_maxcard(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxcard_m150_T40");
    group.sample_size(10);
    for mult in [1u32, 2, 4] {
        let inst = cell(mult as f64 * M_SWITCH as f64);
        let label = format!("M={}m_n={}", mult, inst.n());
        group.bench_with_input(BenchmarkId::new("legacy", &label), &inst, |b, inst| {
            b.iter(|| black_box(run_policy(inst, &mut MaxCard::default())))
        });
        group.bench_with_input(BenchmarkId::new("engine", &label), &inst, |b, inst| {
            b.iter(|| black_box(run_builtin(inst, BuiltinPolicy::MaxCard)))
        });
        group.bench_with_input(BenchmarkId::new("incremental", &label), &inst, |b, inst| {
            b.iter(|| black_box(run_incremental(inst)))
        });
    }
    group.finish();
}

fn bench_minrtime_heaviest_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("minrtime_m150_T40");
    group.sample_size(10);
    let inst = cell(4.0 * M_SWITCH as f64);
    let label = format!("M=4m_n={}", inst.n());
    group.bench_with_input(BenchmarkId::new("legacy", &label), &inst, |b, inst| {
        b.iter(|| black_box(run_policy(inst, &mut BatchMinRTime::default())))
    });
    group.bench_with_input(BenchmarkId::new("engine", &label), &inst, |b, inst| {
        b.iter(|| black_box(run_builtin(inst, BuiltinPolicy::MinRTime)))
    });
    group.bench_with_input(BenchmarkId::new("loop+inc", &label), &inst, |b, inst| {
        b.iter(|| black_box(run_policy(inst, &mut MinRTime::default())))
    });
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead_m150_T40");
    group.sample_size(10);
    for (policy, name) in [
        (BuiltinPolicy::MaxCard, "maxcard"),
        (BuiltinPolicy::MinRTime, "minrtime"),
    ] {
        let inst = cell(4.0 * M_SWITCH as f64);
        let label = format!("{name}_M=4m_n={}", inst.n());
        group.bench_with_input(BenchmarkId::new("disabled", &label), &inst, |b, inst| {
            b.iter(|| {
                let mut tele = fss_engine::EngineTelemetry::disabled();
                black_box(run_builtin_telemetry(inst, policy, &mut tele))
            })
        });
        group.bench_with_input(BenchmarkId::new("enabled", &label), &inst, |b, inst| {
            b.iter(|| {
                let mut tele = fss_engine::EngineTelemetry::enabled();
                black_box(run_builtin_telemetry(inst, policy, &mut tele))
            })
        });
        group.bench_with_input(BenchmarkId::new("flight_off", &label), &inst, |b, inst| {
            b.iter(|| {
                let mut tele = fss_engine::EngineTelemetry::disabled()
                    .with_flight(fss_telemetry::FlightHandle::disabled());
                black_box(run_builtin_telemetry(inst, policy, &mut tele))
            })
        });
        group.bench_with_input(BenchmarkId::new("flight_on", &label), &inst, |b, inst| {
            b.iter(|| {
                let recorder = fss_telemetry::FlightRecorder::new();
                let mut tele =
                    fss_engine::EngineTelemetry::disabled().with_flight(recorder.handle("bench"));
                black_box(run_builtin_telemetry(inst, policy, &mut tele))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_maxcard,
    bench_minrtime_heaviest_cell,
    bench_telemetry_overhead
);
criterion_main!(benches);
