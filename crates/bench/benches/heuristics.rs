//! Criterion benches of the online heuristics: full-instance runs at the
//! paper's per-port congestion levels (scaled switch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fss_core::Instance;
use fss_online::{run_policy, FifoGreedy, MaxCard, MaxWeight, MinRTime};
use fss_sim::{poisson_workload, WorkloadParams};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn workload(m: usize, per_port: f64, rounds: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(0xbe9c);
    poisson_workload(
        &mut rng,
        &WorkloadParams {
            m,
            mean_arrivals: per_port * m as f64,
            rounds,
        },
    )
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics");
    // Congestion 1/3, 1, 2 flows per port per round (paper: M/m in
    // {1/3 .. 4}), on a 30x30 switch over 20 rounds.
    for &cong in &[0.33f64, 1.0, 2.0] {
        let inst = workload(30, cong, 20);
        group.bench_with_input(
            BenchmarkId::new("MaxCard", format!("{cong}")),
            &inst,
            |b, inst| b.iter(|| black_box(run_policy(inst, &mut MaxCard::default()))),
        );
        group.bench_with_input(
            BenchmarkId::new("MinRTime", format!("{cong}")),
            &inst,
            |b, inst| b.iter(|| black_box(run_policy(inst, &mut MinRTime::default()))),
        );
        group.bench_with_input(
            BenchmarkId::new("MaxWeight", format!("{cong}")),
            &inst,
            |b, inst| b.iter(|| black_box(run_policy(inst, &mut MaxWeight::default()))),
        );
        group.bench_with_input(
            BenchmarkId::new("FifoGreedy", format!("{cong}")),
            &inst,
            |b, inst| b.iter(|| black_box(run_policy(inst, &mut FifoGreedy::default()))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policies
}
criterion_main!(benches);
