//! Criterion benches of the offline pipelines: the ART iterative-rounding
//! cascade + realization (Theorem 1) and the MRT binary-search + rounding
//! pipeline (Theorem 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fss_core::gen::{random_instance, GenParams};
use fss_core::Instance;
use fss_offline::art::solve_art;
use fss_offline::mrt::{solve_mrt, RoundingEngine};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn unit_inst(n: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    random_instance(
        &mut rng,
        &GenParams::unit((n / 5).clamp(3, 10), n, (n / 4) as u64),
    )
}

fn bench_art(c: &mut Criterion) {
    let mut group = c.benchmark_group("art_pipeline");
    group.sample_size(10);
    for &n in &[10usize, 20, 40] {
        let inst = unit_inst(n, 0xa57);
        group.bench_with_input(BenchmarkId::new("solve_art_c2", n), &inst, |b, inst| {
            b.iter(|| black_box(solve_art(inst, 2)));
        });
    }
    group.finish();
}

fn bench_mrt(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrt_pipeline");
    group.sample_size(10);
    for &n in &[10usize, 20, 40] {
        let inst = unit_inst(n, 0x317);
        group.bench_with_input(
            BenchmarkId::new("solve_mrt_iterative", n),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(solve_mrt(inst, None, RoundingEngine::IterativeRelaxation).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("solve_mrt_beck_fiala", n),
            &inst,
            |b, inst| {
                b.iter(|| black_box(solve_mrt(inst, None, RoundingEngine::BeckFiala).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_art, bench_mrt);
criterion_main!(benches);
