//! The shared cell-execution core.
//!
//! Both execution substrates — the in-process orchestrator
//! ([`crate::orchestrator::run_bench`], threads of one process) and the
//! distributed coordinator/worker runner (`fss-dist`, multiple
//! `flowsched bench-worker` processes) — run the *same* pipeline:
//!
//! 1. [`select_experiments`] resolves the filter / trace options into
//!    registry entries;
//! 2. [`flatten`] expands them into one flat [`FlatCell`] list, stamping
//!    each cell with its stable [`fss_sim::report::cell_fingerprint`];
//! 3. [`execute_cell`] runs one cell and produces its [`BenchCell`];
//! 4. [`assemble_reports`] + [`write_reports`] fold executed cells back
//!    into schema-validated `BENCH_<experiment>.json` artifacts in
//!    registry declaration order.
//!
//! Because every step after selection is deterministic in the cell list
//! (runners derive their RNG streams from cell values, never from run
//! order or thread identity), *where* a cell executes — which thread,
//! which worker process, this run or a resumed one — cannot change the
//! merged artifact except for wall-clock fields. The differential tests
//! in `tests/` and the `fss-dist` crate pin that invariant down.

use std::path::Path;
use std::time::Instant;

use fss_sim::report::{
    bench_artifact_name, bench_report_to_json, cell_fingerprint, validate_bench_report, BenchCell,
    BenchReport, BENCH_SCHEMA_VERSION,
};

use crate::orchestrator::BenchOptions;
use crate::registry::{select, Experiment, Scale};

/// One schedulable cell of the flattened selection: its experiment and
/// declaration position (for report assembly) plus its fingerprint (the
/// assignment/checkpoint key).
pub struct FlatCell {
    /// Index into the selected experiment list.
    pub exp: usize,
    /// Declaration index of the cell within its experiment.
    pub idx: usize,
    /// Stable identity hash — see [`fss_sim::report::cell_fingerprint`].
    pub fingerprint: String,
    /// The cell itself.
    pub spec: crate::registry::CellSpec,
}

/// The [`Scale`] a set of bench options requests.
pub fn scale_of(opts: &BenchOptions) -> Scale {
    Scale {
        smoke: opts.smoke,
        paper: opts.paper,
        trials: opts.trials,
        telemetry: opts.progress,
        cores: opts.cores,
    }
}

/// Resolve the experiment selection for a run: `--trace` without a
/// filter runs the trace replay alone; with a filter the replay joins
/// the selected registry experiments; an unmatched filter is an error
/// listing the known ids.
pub fn select_experiments(opts: &BenchOptions) -> Result<Vec<Experiment>, String> {
    let mut selected = match (&opts.filter, &opts.trace) {
        (None, Some(_)) => Vec::new(),
        (filter, _) => select(filter.as_deref()),
    };
    if selected.is_empty() && (opts.filter.is_some() || opts.trace.is_none()) {
        return Err(format!(
            "no experiment matches filter {:?}; known ids: {}",
            opts.filter.as_deref().unwrap_or("<all>"),
            crate::registry::registry()
                .iter()
                .map(|e| e.id)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if let Some(path) = &opts.trace {
        selected.push(crate::experiments::trace_replay::trace_replay(
            path,
            opts.stream_trace,
        )?);
    }
    Ok(selected)
}

/// Expand the selected experiments into the flat cell list every
/// executor balances over, stamping fingerprints and rejecting
/// collisions (two cells whose id+params hash identically could
/// silently swap results under checkpoint/resume).
pub fn flatten(selected: &[Experiment], scale: &Scale) -> Result<Vec<FlatCell>, String> {
    let mut flat: Vec<FlatCell> = Vec::new();
    for (exp, e) in selected.iter().enumerate() {
        for (idx, spec) in (e.build)(scale).into_iter().enumerate() {
            let fingerprint = cell_fingerprint(&spec.id, &spec.params);
            flat.push(FlatCell {
                exp,
                idx,
                fingerprint,
                spec,
            });
        }
    }
    if flat.is_empty() {
        return Err("selected experiments expanded to zero cells".into());
    }
    let mut fps: Vec<&str> = flat.iter().map(|f| f.fingerprint.as_str()).collect();
    fps.sort_unstable();
    let n = fps.len();
    fps.dedup();
    if fps.len() != n {
        return Err("duplicate cell fingerprint in the flattened selection".into());
    }
    Ok(flat)
}

/// Execute one flattened cell: run its closure, time it, and package
/// the outcome as the schema's [`BenchCell`].
pub fn execute_cell(fc: &FlatCell) -> BenchCell {
    let t0 = Instant::now();
    let outcome = (fc.spec.run)();
    BenchCell {
        cell_id: fc.spec.id.clone(),
        fingerprint: fc.fingerprint.clone(),
        params: fc.spec.params.clone(),
        metrics: outcome.metrics,
        wall_s: t0.elapsed().as_secs_f64(),
        flows: outcome.flows,
        engine_mode: outcome.engine_mode.to_string(),
        telemetry: outcome.telemetry,
    }
}

/// Fold executed cells — tagged with their `(experiment, declaration)`
/// positions — into one validated [`BenchReport`] per selected
/// experiment, in declaration order.
pub fn assemble_reports(
    selected: &[Experiment],
    smoke: bool,
    jobs: u64,
    total_wall_s: f64,
    mut executed: Vec<(usize, usize, BenchCell)>,
) -> Result<Vec<BenchReport>, String> {
    executed.sort_by_key(|&(exp, idx, _)| (exp, idx));
    let mut reports = Vec::with_capacity(selected.len());
    for (exp, e) in selected.iter().enumerate() {
        let cells: Vec<BenchCell> = executed
            .iter()
            .filter(|&&(x, _, _)| x == exp)
            .map(|(_, _, c)| c.clone())
            .collect();
        let report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: e.id.to_string(),
            description: e.description.to_string(),
            smoke,
            jobs,
            total_wall_s,
            cells,
        };
        validate_bench_report(&report)?;
        reports.push(report);
    }
    Ok(reports)
}

/// Persist each report to `<out_dir>/BENCH_<experiment>.json`.
pub fn write_reports(reports: &[BenchReport], out_dir: &Path) -> Result<(), String> {
    for report in reports {
        let path = out_dir.join(bench_artifact_name(&report.experiment));
        std::fs::write(&path, bench_report_to_json(report))
            .map_err(|err| format!("write {}: {err}", path.display()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaps_opts() -> BenchOptions {
        BenchOptions {
            filter: Some("table_gaps".into()),
            smoke: true,
            ..BenchOptions::default()
        }
    }

    #[test]
    fn flatten_stamps_unique_fingerprints_matching_cell_identity() {
        let opts = gaps_opts();
        let selected = select_experiments(&opts).unwrap();
        let flat = flatten(&selected, &scale_of(&opts)).unwrap();
        assert_eq!(flat.len(), 3);
        for fc in &flat {
            assert_eq!(
                fc.fingerprint,
                cell_fingerprint(&fc.spec.id, &fc.spec.params)
            );
        }
    }

    #[test]
    fn smoke_and_full_tiers_never_share_fingerprints() {
        // Resume correctness depends on this: a checkpoint from one tier
        // must not satisfy a cell of another. Cell ids often coincide
        // across tiers, so the distinguishing knobs (trials, ports,
        // horizon) must be in the params.
        let selected = select(None);
        let smoke = flatten(
            &selected,
            &Scale {
                smoke: true,
                paper: false,
                trials: None,
                telemetry: false,
                cores: 1,
            },
        )
        .unwrap();
        let full = flatten(
            &selected,
            &Scale {
                smoke: false,
                paper: false,
                trials: None,
                telemetry: false,
                cores: 1,
            },
        )
        .unwrap();
        let paper = flatten(
            &selected,
            &Scale {
                smoke: false,
                paper: true,
                trials: None,
                telemetry: false,
                cores: 1,
            },
        )
        .unwrap();
        // A fingerprint shared across tiers must mean *the same
        // workload*: identical cell id and identical params (so every
        // tier-dependent knob — trials, ports, horizon — is visible to
        // the hash). This is what makes resuming into a different tier
        // safe: a checkpointed cell is only reused where it genuinely
        // describes the requested work.
        let mut by_fp: std::collections::HashMap<&str, &FlatCell> =
            std::collections::HashMap::new();
        for fc in smoke.iter().chain(full.iter()).chain(paper.iter()) {
            match by_fp.entry(fc.fingerprint.as_str()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(fc);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let seen = *e.get();
                    assert_eq!(
                        seen.spec.id, fc.spec.id,
                        "fingerprint collision across cell ids"
                    );
                    assert_eq!(
                        seen.spec.params, fc.spec.params,
                        "cell {} shares a fingerprint across tiers with different params",
                        fc.spec.id
                    );
                }
            }
        }
        // And the tiers must actually differ where it matters: the
        // scale-sensitive experiments may not expand to identical cell
        // sets at smoke vs full scale.
        let smoke_fps: std::collections::HashSet<&str> =
            smoke.iter().map(|f| f.fingerprint.as_str()).collect();
        for fc in full.iter() {
            if !fc.spec.id.starts_with("table_gaps/") {
                assert!(
                    !smoke_fps.contains(fc.fingerprint.as_str()),
                    "full-tier cell {} is indistinguishable from its smoke-tier twin",
                    fc.spec.id
                );
            }
        }
    }

    #[test]
    fn execute_then_assemble_round_trips_one_experiment() {
        let opts = gaps_opts();
        let selected = select_experiments(&opts).unwrap();
        let flat = flatten(&selected, &scale_of(&opts)).unwrap();
        let executed: Vec<(usize, usize, BenchCell)> = flat
            .iter()
            .map(|fc| (fc.exp, fc.idx, execute_cell(fc)))
            .collect();
        let reports = assemble_reports(&selected, true, 1, 0.5, executed).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].cells.len(), 3);
        // Declaration order survives shuffled completion order.
        let mut shuffled: Vec<(usize, usize, BenchCell)> = flat
            .iter()
            .rev()
            .map(|fc| (fc.exp, fc.idx, execute_cell(fc)))
            .collect();
        shuffled.swap(0, 1);
        let again = assemble_reports(&selected, true, 1, 0.5, shuffled).unwrap();
        assert_eq!(
            reports[0]
                .cells
                .iter()
                .map(|c| &c.cell_id)
                .collect::<Vec<_>>(),
            again[0]
                .cells
                .iter()
                .map(|c| &c.cell_id)
                .collect::<Vec<_>>()
        );
    }
}
