//! Figures 6 and 7: the online heuristics across the `(M, T)` grid
//! against the paper's LP reference bounds.
//!
//! Cell layout mirrors the legacy `fig6` / `fig7` bins: one heuristic
//! cell per `(policy, M, T)` (shared seeds across policies keep the
//! comparison paired) and one LP cell per bounded `(M, T)` point. Smoke
//! scale matches the bins' `--quick` mode, full scale their default mode
//! (the LP series stays on the scaled-down switch; the paper itself
//! needed >3 h of Gurobi per full-size cell).

use fss_sim::{
    lp_bounds_grid_parts, run_grid, run_grid_telemetry, ExperimentConfig, LpBoundParts, PolicyKind,
};

use crate::registry::{CellOutcome, CellSpec, Experiment, Scale};

/// Format an `M` value for cell ids: integral values print bare
/// (`M50`), fractional ones with two decimals (`M2.67`).
fn fmt_m(ma: f64) -> String {
    if ma.fract() == 0.0 {
        format!("{ma}")
    } else {
        format!("{ma:.2}")
    }
}

/// Grid sizes per scale: `(m, heuristic T values, LP T values, trials,
/// LP trials)`. Identical to the legacy bins' `--quick` / default /
/// `--paper` modes (paper scale runs the 150x150 heuristic grid and, as
/// in the legacy bins, no LP series — the paper itself needed >3 h of
/// Gurobi per full-size LP cell).
fn grid(scale: &Scale) -> (usize, Vec<u64>, Vec<u64>, u64, u64) {
    if scale.paper {
        (
            150,
            vec![10, 12, 14, 16, 18, 20, 40, 60, 80, 100],
            vec![],
            scale.trials_or(10, 10),
            0,
        )
    } else if scale.smoke {
        (8, vec![6, 8], vec![6], scale.trials_or(2, 2), 1)
    } else {
        (
            6,
            vec![10, 12, 14, 16, 18, 20, 40, 60, 80, 100],
            vec![10, 12],
            scale.trials_or(5, 5),
            2,
        )
    }
}

/// The `M` values that get an LP reference series: all of them at full
/// scale (the legacy bins' behavior), only the stable `λ = M/m <= 1`
/// points at smoke scale (the overloaded LPs dwarf a CI budget).
fn lp_m_values<'a>(scale: &Scale, m_values: &'a [f64], m: usize) -> impl Iterator<Item = &'a f64> {
    let smoke = scale.smoke;
    m_values
        .iter()
        .filter(move |&&ma| !smoke || ma / m as f64 <= 1.0)
}

/// One `(policy, M, T)` heuristic cell, executed through `fss-engine`
/// via [`run_grid`] on a singleton grid (the value-derived trial seeds
/// make this identical to the corresponding point of the full grid).
fn heuristic_cell(
    exp: &'static str,
    base: &ExperimentConfig,
    policy: PolicyKind,
    ma: f64,
    t: u64,
    instrument: bool,
) -> CellSpec {
    let cfg = ExperimentConfig {
        m_values: vec![ma],
        t_values: vec![t],
        policies: vec![policy],
        ..base.clone()
    };
    CellSpec::new(
        format!("{exp}/{}/M{}/T{t}", policy.name(), fmt_m(ma)),
        // `m` and `trials` are tier-dependent but absent from the cell
        // id, so they must be params: fingerprints (the checkpoint /
        // shard-assignment key) hash the params, and cells from
        // different tiers must never collide.
        vec![
            ("policy", policy.name().to_string()),
            ("M", fmt_m(ma)),
            ("T", t.to_string()),
            ("m", base.m.to_string()),
            ("trials", base.trials.to_string()),
        ],
        move || {
            let (cell, telemetry) = if instrument {
                let (mut cells, snap) = run_grid_telemetry(&cfg);
                (
                    cells.pop().expect("singleton grid yields a cell"),
                    Some(snap),
                )
            } else {
                (
                    run_grid(&cfg).pop().expect("singleton grid yields a cell"),
                    None,
                )
            };
            CellOutcome {
                metrics: vec![
                    ("avg_response".into(), cell.avg_response),
                    ("max_response".into(), cell.max_response),
                    ("mean_flows".into(), cell.mean_flows),
                ],
                flows: (cell.mean_flows * cell.trials as f64).round() as u64,
                engine_mode: "engine",
                telemetry,
            }
        },
    )
}

/// One `(M, T)` LP-bound cell.
fn lp_cell(
    exp: &'static str,
    base: &ExperimentConfig,
    ma: f64,
    t: u64,
    lp_trials: u64,
    window: Option<u64>,
    parts: LpBoundParts,
) -> CellSpec {
    let cfg = ExperimentConfig {
        m_values: vec![ma],
        t_values: vec![t],
        trials: lp_trials,
        ..base.clone()
    };
    let metric_name = if parts.avg {
        "avg_response_bound"
    } else {
        "max_response_bound"
    };
    CellSpec::new(
        format!("{exp}/lp/M{}/T{t}", fmt_m(ma)),
        vec![
            ("M", fmt_m(ma)),
            ("T", t.to_string()),
            ("m", base.m.to_string()),
            ("trials", lp_trials.to_string()),
        ],
        move || {
            let b = lp_bounds_grid_parts(&cfg, window, parts)
                .pop()
                .expect("singleton grid yields a bound");
            let value = if parts.avg {
                b.avg_response_bound
            } else {
                b.max_response_bound
            };
            CellOutcome {
                metrics: vec![(metric_name.into(), value)],
                flows: 0,
                engine_mode: "lp",
                telemetry: None,
            }
        },
    )
}

/// Figure 6: average response time, heuristics vs LP (1)–(4).
pub fn fig6() -> Experiment {
    Experiment {
        id: "fig6",
        description: "Figure 6 — average response time, heuristics vs LP (1)-(4) lower bound",
        build: Box::new(build_fig6),
    }
}

fn build_fig6(scale: &Scale) -> Vec<CellSpec> {
    let (m, heur_t, lp_t, trials, lp_trials) = grid(scale);
    let base = ExperimentConfig::scaled(m, heur_t.clone(), trials);
    let mut cells = Vec::new();
    for &policy in &PolicyKind::PAPER_TRIO {
        for &ma in &base.m_values {
            for &t in &heur_t {
                cells.push(heuristic_cell(
                    "fig6",
                    &base,
                    policy,
                    ma,
                    t,
                    scale.telemetry,
                ));
            }
        }
    }
    // Windowed ART LP: the window must comfortably exceed the worst
    // response an optimal schedule needs — with per-port intensity
    // λ = M/m the backlog after T rounds is about (λ-1)·T, so
    // λ·T_max + slack is safe per M; the LP auto-grows on infeasibility.
    // Smoke scale keeps only the stable points (λ <= 1): the overloaded
    // cells make the windowed LP orders of magnitude bigger than a
    // CI-sized run can afford.
    let t_max = lp_t.iter().copied().max().unwrap_or(10);
    for &ma in lp_m_values(scale, &base.m_values, m) {
        let lambda = ma / m as f64;
        let window = ((lambda * t_max as f64).ceil() as u64).max(8) + 4;
        for &t in &lp_t {
            cells.push(lp_cell(
                "fig6",
                &base,
                ma,
                t,
                lp_trials,
                Some(window),
                LpBoundParts::AVG,
            ));
        }
    }
    cells
}

/// Figure 7: maximum response time, heuristics vs LP (19)–(21).
pub fn fig7() -> Experiment {
    Experiment {
        id: "fig7",
        description: "Figure 7 — maximum response time, heuristics vs binary-searched LP (19)-(21)",
        build: Box::new(build_fig7),
    }
}

fn build_fig7(scale: &Scale) -> Vec<CellSpec> {
    let (m, heur_t, lp_t, trials, lp_trials) = grid(scale);
    let base = ExperimentConfig::scaled(m, heur_t.clone(), trials);
    let mut cells = Vec::new();
    for &policy in &PolicyKind::PAPER_TRIO {
        for &ma in &base.m_values {
            for &t in &heur_t {
                cells.push(heuristic_cell(
                    "fig7",
                    &base,
                    policy,
                    ma,
                    t,
                    scale.telemetry,
                ));
            }
        }
    }
    for &ma in lp_m_values(scale, &base.m_values, m) {
        for &t in &lp_t {
            cells.push(lp_cell(
                "fig7",
                &base,
                ma,
                t,
                lp_trials,
                None,
                LpBoundParts::MAX,
            ));
        }
    }
    cells
}
