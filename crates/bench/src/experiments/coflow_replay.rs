//! `coflow_replay`: the paper's heuristics over a *real-shaped*
//! workload — the checked-in sample coflow CSV
//! (`examples/sample_coflow.csv`), converted through `fss-trace`'s
//! deterministic CSV → arrival-trace pipeline and replayed in three
//! variants:
//!
//! - `base` — the converted trace as-is;
//! - `staggered` — release times dilated 4×, spreading coflow starts
//!   apart (tests the policies under sparse, bursty arrivals);
//! - `skewed` — src/dst resampled from Zipf(1.2) under a fixed seed,
//!   concentrating load on hotspot ports (width skew, the regime where
//!   maximum-matching policies separate from greedy ones).
//!
//! Tiers differ by an explicit morph knob carried in the cell params —
//! smoke truncates the trace, paper compresses time 4× (a rate
//! scale-up) — so cells never alias across tiers under
//! checkpoint/resume. Everything is deterministic: same CSV, same
//! seeds, same artifact.

use std::sync::Arc;

use fss_sim::arrival_trace::{ArrivalTrace, TraceSource};
use fss_sim::PolicyKind;
use fss_trace::{convert_stream, ConvertOptions, MorphSpec, MorphedSource, TraceWriter};

use crate::registry::{CellOutcome, CellSpec, Experiment};

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::MaxCard,
    PolicyKind::MinRTime,
    PolicyKind::MaxWeight,
    PolicyKind::FifoGreedy,
];

/// Conversion knobs for the sample: fold the cluster's ~96 ports onto a
/// 32×32 switch, 1 MiB per unit flow, 500 ms rounds.
const PORTS: usize = 32;
const SAMPLE_OPTS: ConvertOptions = ConvertOptions {
    ports: PORTS,
    quantum_bytes: 1 << 20,
    ms_per_round: 500,
};

/// Arrivals the smoke tier keeps (CI-sized).
const SMOKE_TRUNCATE: u64 = 160;
/// Time-compression factor of the paper tier (4× the arrival rate).
const PAPER_SCALE: f64 = 4.0;

/// Convert the checked-in sample CSV into a shared in-memory trace.
/// The sample is a few hundred flows, so conversion is microseconds;
/// determinism (fixed CSV, fixed options) makes the artifact stable.
fn sample_trace() -> Arc<ArrivalTrace> {
    let csv = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/sample_coflow.csv"
    );
    let text = std::fs::read(csv)
        .unwrap_or_else(|e| panic!("coflow_replay needs the checked-in sample {csv}: {e}"));
    let mut jsonl = Vec::new();
    let writer = TraceWriter::from_writer(&mut jsonl, csv, SAMPLE_OPTS.ports)
        .expect("in-memory trace writer");
    convert_stream(std::io::Cursor::new(text), csv, writer, SAMPLE_OPTS)
        .unwrap_or_else(|e| panic!("convert {csv}: {e}"));
    let jsonl = String::from_utf8(jsonl).expect("trace JSONL is UTF-8");
    Arc::new(ArrivalTrace::from_jsonl(&jsonl).expect("converted sample validates"))
}

/// The three workload variants, as `(name, morphs)`.
fn variants() -> [(&'static str, Vec<MorphSpec>); 3] {
    [
        ("base", vec![]),
        ("staggered", vec![MorphSpec::Dilate(4.0)]),
        (
            "skewed",
            vec![MorphSpec::Skew {
                theta: 1.2,
                seed: 7,
            }],
        ),
    ]
}

/// Build the `coflow_replay` experiment.
pub fn coflow_replay() -> Experiment {
    Experiment::new(
        "coflow_replay",
        "replay the converted sample coflow trace (base, staggered, skewed) through every policy",
        |scale| {
            let trace = sample_trace();
            let tier = scale.tier_name();
            // The tier's extra morph, appended after the variant's: the
            // knob is in the params, so tiers never share fingerprints.
            let (tier_key, tier_value, tier_morph) = if scale.paper {
                (
                    "scale_rate",
                    format!("{PAPER_SCALE}"),
                    Some(MorphSpec::ScaleRate(PAPER_SCALE)),
                )
            } else if scale.smoke {
                (
                    "truncate",
                    SMOKE_TRUNCATE.to_string(),
                    Some(MorphSpec::Truncate(SMOKE_TRUNCATE)),
                )
            } else {
                ("truncate", "none".to_string(), None)
            };
            let instrument = scale.telemetry;
            let mut cells = Vec::new();
            for (variant, morphs) in variants() {
                for policy in POLICIES {
                    let trace = trace.clone();
                    let mut specs = morphs.clone();
                    specs.extend(tier_morph);
                    cells.push(CellSpec::new(
                        format!("coflow_replay/{}/{variant}/{tier}", policy.name()),
                        vec![
                            ("policy", policy.name().to_string()),
                            ("variant", variant.to_string()),
                            ("tier", tier.to_string()),
                            (tier_key, tier_value.clone()),
                            ("ports", PORTS.to_string()),
                            ("trace", "sample_coflow.csv".to_string()),
                        ],
                        move || {
                            let mut tele = if instrument {
                                fss_engine::EngineTelemetry::enabled()
                            } else {
                                fss_engine::EngineTelemetry::disabled()
                            };
                            let source =
                                MorphedSource::new(TraceSource::new(trace.clone()), &specs)
                                    .expect("registry morph specs validate");
                            let stats = fss_engine::run_stream_telemetry(
                                source,
                                fss_engine::EngineMode::Exact(policy.to_engine()),
                                &mut tele,
                                |_, _, _| {},
                            );
                            CellOutcome {
                                metrics: vec![
                                    ("mean_response".into(), stats.mean_response()),
                                    ("max_response".into(), stats.max_response as f64),
                                    ("makespan".into(), stats.makespan as f64),
                                    ("peak_queue".into(), stats.peak_queue as f64),
                                ],
                                flows: stats.dispatched,
                                engine_mode: "stream",
                                telemetry: instrument.then(|| tele.snapshot()),
                            }
                        },
                    ));
                }
            }
            cells
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Scale;

    #[test]
    fn sample_converts_and_expands_to_twelve_cells_per_tier() {
        let trace = sample_trace();
        assert_eq!(trace.ports, PORTS);
        assert!(
            trace.len() as u64 > SMOKE_TRUNCATE,
            "sample ({} flows) must outsize the smoke truncation",
            trace.len()
        );
        let e = coflow_replay();
        for (smoke, paper) in [(true, false), (false, false), (false, true)] {
            let cells = (e.build)(&Scale {
                smoke,
                paper,
                trials: None,
                telemetry: false,
                cores: 1,
            });
            assert_eq!(cells.len(), 12, "3 variants x 4 policies");
        }
    }

    #[test]
    fn cells_are_deterministic_across_runs() {
        let e = coflow_replay();
        let scale = Scale {
            smoke: true,
            paper: false,
            trials: None,
            telemetry: false,
            cores: 1,
        };
        let a: Vec<_> = (e.build)(&scale)
            .iter()
            .map(|c| (c.run)().metrics)
            .collect();
        let b: Vec<_> = (e.build)(&scale)
            .iter()
            .map(|c| (c.run)().metrics)
            .collect();
        assert_eq!(a, b, "seeded morphs make the experiment reproducible");
    }
}
