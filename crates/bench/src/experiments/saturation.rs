//! Saturation sweep (paper §6's "beyond worst-case" direction): response
//! vs per-port arrival intensity `λ = M/m` for all four policies, plus
//! the bisected stability knee per policy.
//!
//! Every cell runs through streaming [`fss_sim::ScenarioSpec`]s
//! (`fss_sim::saturation::sweep_scenario` names the exact per-trial
//! scenario): workloads are never materialized, so the full-scale grid
//! can push horizons far beyond what the batch runner tolerated.

use fss_sim::{saturation_sweep_cores, stable_intensity, PolicyKind};

use crate::registry::{CellOutcome, CellSpec, Experiment, Scale};

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::MaxCard,
    PolicyKind::MinRTime,
    PolicyKind::MaxWeight,
    PolicyKind::FifoGreedy,
];

/// The legacy bin's intensity grid.
pub const INTENSITIES: [f64; 9] = [0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5];

/// Sweep + knee experiment, one cell per `(policy, λ)` point and one
/// knee cell per policy.
pub fn saturation() -> Experiment {
    Experiment {
        id: "saturation",
        description: "response vs arrival intensity across the stability boundary",
        build: Box::new(build),
    }
}

fn build(scale: &Scale) -> Vec<CellSpec> {
    // Full tier runs the ROADMAP's long-horizon grid: sweeps stream at
    // `O(peak queue)` memory and the weighted policies now repair their
    // matchings incrementally, so `T = 5_000` arrival rounds per point
    // is affordable (the knee estimate sharpens as `T` grows). Smoke
    // stays CI-sized; the paper tier pushes the horizon into the
    // hundreds of thousands of rounds at the paper's 10 trials — a
    // multi-hour budget that expects the checkpointed distributed
    // runner (`bench --workers N --resume`).
    let (m, rounds, trials) = if scale.paper {
        (20usize, 100_000u64, scale.tiered_trials(2, 4, 10))
    } else if scale.smoke {
        (6, 10, scale.trials_or(2, 2))
    } else {
        (20, 5_000, scale.trials_or(4, 4))
    };
    let instrument = scale.telemetry;
    // Trial-level parallelism (`--cores`): spread each point's trials
    // over worker threads. Deliberately NOT a cell param — results are
    // bit-identical at every cores value, so artifacts from different
    // settings must keep the same fingerprints and diff clean.
    let cores = scale.cores.max(1);
    let mut cells = Vec::new();
    for policy in POLICIES {
        for &lambda in &INTENSITIES {
            cells.push(CellSpec::new(
                format!("saturation/{}/lam{lambda}", policy.name()),
                // m/T/trials are tier-dependent and not in the id, so
                // they are params: tiers must not share fingerprints.
                vec![
                    ("policy", policy.name().to_string()),
                    ("lambda", lambda.to_string()),
                    ("m", m.to_string()),
                    ("T", rounds.to_string()),
                    ("trials", trials.to_string()),
                ],
                move || {
                    let mut tele = if instrument {
                        fss_engine::EngineTelemetry::enabled()
                    } else {
                        fss_engine::EngineTelemetry::disabled()
                    };
                    let pt = saturation_sweep_cores(
                        policy,
                        m,
                        rounds,
                        &[lambda],
                        trials,
                        0x5a7,
                        cores,
                        &mut tele,
                    )
                    .pop()
                    .expect("one point per intensity");
                    CellOutcome {
                        metrics: vec![
                            ("mean_response".into(), pt.mean_response),
                            ("max_response".into(), pt.max_response),
                        ],
                        flows: (lambda * m as f64 * rounds as f64 * trials as f64).round() as u64,
                        engine_mode: "engine",
                        telemetry: instrument.then(|| tele.snapshot()),
                    }
                },
            ));
        }
        cells.push(CellSpec::new(
            format!("saturation/knee/{}", policy.name()),
            vec![
                ("policy", policy.name().to_string()),
                ("m", m.to_string()),
                ("T", rounds.to_string()),
                ("trials", trials.min(2).to_string()),
            ],
            move || {
                let knee = stable_intensity(policy, m, rounds, 4.0, trials.min(2), 0x5a8);
                CellOutcome {
                    metrics: vec![("stable_intensity".into(), knee)],
                    flows: 0,
                    engine_mode: "engine",
                    telemetry: None,
                }
            },
        ));
    }
    cells
}
