//! Registered experiment definitions, one module per family.
//!
//! Each module exposes constructor functions returning
//! [`crate::registry::Experiment`] values; [`crate::registry::registry`]
//! lists them all. The runners reuse the exact library calls and seed
//! formulas of the legacy one-off bins, so registry output is
//! number-for-number identical to what those bins printed (asserted by
//! `tests/registry_differential.rs`).

pub mod coflow_replay;
pub mod figures;
pub mod probe;
pub mod saturation;
pub mod tables;
pub mod trace_replay;
