//! Open-problem probe (paper §6): empirical evidence on whether
//! interval-degree-bounded request sequences admit constant response
//! time without augmentation.

use fss_core::prelude::*;
use fss_offline::exact::min_max_response;
use fss_offline::mrt::min_feasible_rho;
use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::registry::{CellOutcome, CellSpec, Experiment};

/// Generate `rounds` of unit-flow arrivals on an `m x m` unit switch such
/// that every port's arrival degree over any window `I` is `<= |I| + 1`.
///
/// Invariant maintained per port: with `g_v(t) = arrivals_v(0..=t) - t`,
/// the condition is `g_v(j) - min_{i<j} g_v(i) <= 1` for all `j`. We
/// track the running minimum and admit an edge only if both endpoints
/// stay within budget.
pub fn degree_bounded_sequence(rng: &mut SmallRng, m: usize, rounds: u64) -> Instance {
    let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
    let mut g_in = vec![0i64; m];
    let mut gmin_in = vec![0i64; m];
    let mut g_out = vec![0i64; m];
    let mut gmin_out = vec![0i64; m];
    for t in 0..rounds {
        let mut deg_in = vec![0i64; m];
        let mut deg_out = vec![0i64; m];
        let attempts = m + rng.gen_range(0..=m / 2 + 1);
        for _ in 0..attempts {
            let s = rng.gen_range(0..m);
            let d = rng.gen_range(0..m);
            let gi = g_in[s] + deg_in[s] + 1 - 1;
            let go = g_out[d] + deg_out[d] + 1 - 1;
            if gi - gmin_in[s] <= 1 && go - gmin_out[d] <= 1 {
                deg_in[s] += 1;
                deg_out[d] += 1;
                b.unit_flow(s as u32, d as u32, t);
            }
        }
        for v in 0..m {
            g_in[v] += deg_in[v] - 1;
            gmin_in[v] = gmin_in[v].min(g_in[v]);
            g_out[v] += deg_out[v] - 1;
            gmin_out[v] = gmin_out[v].min(g_out[v]);
        }
    }
    b.build().expect("generator respects invariants")
}

/// Verify the interval-degree condition directly (test oracle for the
/// generator).
pub fn check_degree_condition(inst: &Instance, m: usize, rounds: u64) -> bool {
    let arr = |v: u32, input: bool, t: u64| -> i64 {
        inst.flows
            .iter()
            .filter(|f| f.release == t && if input { f.src == v } else { f.dst == v })
            .count() as i64
    };
    for v in 0..m as u32 {
        for input in [true, false] {
            for i in 0..rounds {
                let mut sum = 0i64;
                for j in i..rounds {
                    sum += arr(v, input, j);
                    if sum > (j - i + 1) as i64 + 1 {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// The probe experiment: one cell sampling many degree-bounded
/// sequences and reporting the worst exact / LP ρ observed.
pub fn open_problem_probe() -> Experiment {
    Experiment {
        id: "open_problem_probe",
        description: "paper §6 probe — worst exact rho over degree-bounded request sequences",
        build: Box::new(|scale| {
            // The paper tier samples many more sequences: the probe's
            // value is the worst case observed, which sharpens with
            // sample count. `sequences` is already a param, so tiers
            // get distinct fingerprints.
            let (trials, m, rounds) = if scale.paper {
                (scale.tiered_trials(5, 60, 200), 3usize, 5u64)
            } else if scale.smoke {
                (scale.trials_or(5, 5), 3, 4)
            } else {
                (scale.trials_or(60, 60), 3, 5)
            };
            vec![CellSpec::new(
                format!("open_problem_probe/m{m}/rounds{rounds}"),
                vec![
                    ("m", m.to_string()),
                    ("rounds", rounds.to_string()),
                    ("sequences", trials.to_string()),
                ],
                move || probe_cell(m, rounds, trials),
            )]
        }),
    }
}

fn probe_cell(m: usize, rounds: u64, trials: u64) -> CellOutcome {
    let mut worst_exact = 0u64;
    let mut worst_lp = 0u64;
    let mut flows = 0u64;
    let mut done = 0u64;
    let mut seed = 0u64;
    while done < trials {
        seed += 1;
        let mut rng = SmallRng::seed_from_u64(0x09e4 + seed);
        let inst = degree_bounded_sequence(&mut rng, m, rounds);
        if inst.n() == 0 || inst.n() > 14 {
            continue; // keep the exact solver honest
        }
        assert!(
            check_degree_condition(&inst, m, rounds),
            "generator invariant broken"
        );
        let lp = min_feasible_rho(&inst, None).expect("LP search");
        let (exact, _) = min_max_response(&inst);
        worst_exact = worst_exact.max(exact);
        worst_lp = worst_lp.max(lp);
        flows += inst.n() as u64;
        done += 1;
    }
    CellOutcome {
        metrics: vec![
            ("worst_lp_rho".into(), worst_lp as f64),
            ("worst_exact_rho".into(), worst_exact as f64),
            ("sequences".into(), trials as f64),
        ],
        flows,
        engine_mode: "exact",
        telemetry: None,
    }
}
