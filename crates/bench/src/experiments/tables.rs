//! The theorem-validation and ablation tables, registered cell-by-cell.
//!
//! Each table's rows become independent cells (same seed formulas as the
//! legacy bins), so heavy rows — large-`n` LP solves, exact searches —
//! load-balance across the orchestrator's workers instead of running in
//! one bin's sequential loop.

use std::time::Instant;

use fss_coflow::instance::CoflowBuilder;
use fss_coflow::{
    bottleneck_lower_bound, evaluate as coflow_evaluate, schedule_coflows, CoflowInstance,
    CoflowOrdering,
};
use fss_core::gen::{random_instance, GenParams};
use fss_core::prelude::*;
use fss_offline::art::{
    art_lp_lower_bound, iterative_rounding, realize_schedule, realize_schedule_with_window,
    solve_art,
};
use fss_offline::exact::min_max_response;
use fss_offline::greedy_schedule;
use fss_offline::hardness::{
    figure_4b, rtt_reduction, small_satisfiable_rtt, small_unsatisfiable_rtt,
};
use fss_offline::mrt::{
    lp_feasible, round_time_constrained, solve_mrt, RoundingEngine, TimeConstrained,
};
use fss_online::{amrt_schedule, run_policy, MaxCard, MaxWeight, MinRTime};
use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::registry::{CellOutcome, CellSpec, Experiment};

/// Theorem 1 validation: FS-ART vs the LP optimum for `c ∈ {1, 2, 4}`.
pub fn table_art() -> Experiment {
    Experiment {
        id: "table_art",
        description: "Theorem 1 validation — FS-ART cost vs LP (1)-(4) across capacity factors",
        build: Box::new(|scale| {
            let sizes: Vec<usize> = if scale.paper {
                vec![20, 40, 80, 120, 160]
            } else if scale.smoke {
                vec![12, 20]
            } else {
                vec![20, 40, 80, 120]
            };
            let trials = scale.tiered_trials(1, 3, 10);
            let mut cells = Vec::new();
            for &n in &sizes {
                let m = (n / 5).clamp(3, 12);
                for &c in &[1u32, 2, 4] {
                    cells.push(CellSpec::new(
                        format!("table_art/n{n}/c{c}"),
                        vec![
                            ("n", n.to_string()),
                            ("m", m.to_string()),
                            ("c", c.to_string()),
                            ("trials", trials.to_string()),
                        ],
                        move || art_cell(n, m, c, trials),
                    ));
                }
            }
            cells
        }),
    }
}

fn art_cell(n: usize, m: usize, c: u32, trials: u64) -> CellOutcome {
    let mut lp_sum = 0.0;
    let mut pseudo_sum = 0.0;
    let mut overload_max = 0i64;
    let mut total_sum = 0u64;
    let mut window_sum = 0u64;
    for k in 0..trials {
        let mut rng = SmallRng::seed_from_u64((0xa47 + (n as u64)) << 8 | k);
        let p = GenParams::unit(m, n, (n / 4) as u64);
        let inst = random_instance(&mut rng, &p);
        let lp = art_lp_lower_bound(&inst, None).expect("LP bound");
        let res = solve_art(&inst, c);
        lp_sum += lp;
        pseudo_sum += res.pseudo.pseudo.total_response(&inst) as f64;
        overload_max = overload_max.max(res.pseudo.pseudo.max_window_overload(&inst));
        total_sum += res.metrics.total_response;
        window_sum += res.window;
    }
    let t = trials as f64;
    let lp = lp_sum / t;
    let total = total_sum as f64 / t;
    CellOutcome {
        metrics: vec![
            ("lp_bound".into(), lp),
            ("pseudo_cost".into(), pseudo_sum / t),
            ("overload".into(), overload_max as f64),
            ("log_bound".into(), 10.0 * ((n as f64).log2().ceil() + 1.0)),
            ("total_response".into(), total),
            ("ratio".into(), total / lp.max(1.0)),
            ("window".into(), window_sum as f64 / t),
        ],
        flows: n as u64 * trials,
        engine_mode: "offline",
        telemetry: None,
    }
}

/// Theorem 3 validation: FS-MRT augmentation vs the `2·dmax − 1` budget.
pub fn table_mrt() -> Experiment {
    Experiment {
        id: "table_mrt",
        description: "Theorem 3 validation — FS-MRT augmentation vs the 2*dmax-1 budget",
        build: Box::new(|scale| {
            let ns: Vec<usize> = if scale.paper {
                vec![15, 30, 60, 90]
            } else if scale.smoke {
                vec![10]
            } else {
                vec![15, 30, 60]
            };
            let trials = scale.tiered_trials(2, 5, 10);
            let mut cells = Vec::new();
            for &n in &ns {
                for &dmax in &[1u32, 2, 3, 5] {
                    cells.push(CellSpec::new(
                        format!("table_mrt/n{n}/dmax{dmax}"),
                        vec![
                            ("n", n.to_string()),
                            ("dmax", dmax.to_string()),
                            ("trials", trials.to_string()),
                        ],
                        move || mrt_cell(n, dmax, trials),
                    ));
                }
            }
            cells
        }),
    }
}

fn mrt_cell(n: usize, dmax: u32, trials: u64) -> CellOutcome {
    let mut rho_sum = 0u64;
    let mut greedy_sum = 0u64;
    let mut aug_max = 0u32;
    let mut all_within = true;
    for k in 0..trials {
        let mut rng = SmallRng::seed_from_u64(0x3a7 + (n as u64 * 131) + k);
        let p = GenParams {
            m: 4,
            m_out: 4,
            cap: 2 * dmax,
            n,
            max_demand: dmax,
            max_release: (n / 3) as u64,
        };
        let inst = random_instance(&mut rng, &p);
        let d_actual = inst.dmax();
        let r = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).expect("solver");
        greedy_sum += metrics::evaluate(&inst, &greedy_schedule(&inst)).max_response;
        rho_sum += r.rho_star;
        aug_max = aug_max.max(r.augmentation);
        if r.augmentation > 2 * d_actual - 1 {
            all_within = false;
        }
        validate::check(&inst, &r.schedule, &inst.switch.augmented(r.augmentation))
            .expect("schedule feasible on augmented switch");
    }
    let t = trials as f64;
    CellOutcome {
        metrics: vec![
            ("rho_star".into(), rho_sum as f64 / t),
            ("greedy_rho".into(), greedy_sum as f64 / t),
            ("max_augmentation".into(), f64::from(aug_max)),
            ("budget".into(), f64::from(2 * dmax - 1)),
            ("within_budget".into(), if all_within { 1.0 } else { 0.0 }),
        ],
        flows: n as u64 * trials,
        engine_mode: "offline",
        telemetry: None,
    }
}

/// Lemma 5.3 validation: online AMRT vs the offline ρ* and its load
/// budget.
pub fn table_amrt() -> Experiment {
    Experiment {
        id: "table_amrt",
        description: "Lemma 5.3 validation — online AMRT vs offline rho* and the load budget",
        build: Box::new(|scale| {
            let configs: Vec<(usize, u64)> = if scale.paper {
                vec![(12, 4), (24, 8), (48, 16), (96, 32)]
            } else if scale.smoke {
                vec![(10, 4)]
            } else {
                vec![(12, 4), (24, 8), (48, 16)]
            };
            let trials = scale.tiered_trials(2, 5, 10);
            configs
                .into_iter()
                .map(|(n, span)| {
                    CellSpec::new(
                        format!("table_amrt/n{n}/span{span}"),
                        vec![
                            ("n", n.to_string()),
                            ("release_span", span.to_string()),
                            ("trials", trials.to_string()),
                        ],
                        move || amrt_cell(n, span, trials),
                    )
                })
                .collect()
        }),
    }
}

fn amrt_cell(n: usize, span: u64, trials: u64) -> CellOutcome {
    let mut online_sum = 0u64;
    let mut offline_sum = 0u64;
    let mut load_max = 0u64;
    for k in 0..trials {
        let mut rng = SmallRng::seed_from_u64(0xa3a7 + (n as u64 * 17) + k);
        let p = GenParams::unit(4, n, span);
        let inst = random_instance(&mut rng, &p);
        let online = amrt_schedule(&inst);
        let offline = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
        online_sum += online.metrics.max_response;
        offline_sum += offline.rho_star;
        load_max = load_max.max(online.max_port_load);
    }
    let t = trials as f64;
    let online = online_sum as f64 / t;
    let offline = offline_sum as f64 / t;
    CellOutcome {
        metrics: vec![
            ("online_rho".into(), online),
            ("offline_rho_star".into(), offline),
            ("ratio".into(), online / offline.max(1.0)),
            ("max_port_load".into(), load_max as f64),
            // Unit capacities and demands: 2 * (1 + 2*1 - 1) = 4.
            ("load_budget".into(), 4.0),
        ],
        flows: n as u64 * trials,
        engine_mode: "offline",
        telemetry: None,
    }
}

/// Theorem 2 / Lemma 5.2 gap table: exact values of the hardness
/// gadgets. Scale-independent (the gadgets are fixed).
pub fn table_gaps() -> Experiment {
    Experiment {
        id: "table_gaps",
        description: "Theorem 2 / Lemma 5.2 — exact gap values of the hardness gadgets",
        build: Box::new(|_scale| {
            vec![
                CellSpec::new(
                    "table_gaps/rtt_satisfiable",
                    vec![("gadget", "rtt_satisfiable".to_string())],
                    || {
                        let sat = rtt_reduction(&small_satisfiable_rtt());
                        let (opt, _) = min_max_response(&sat);
                        let solved =
                            solve_mrt(&sat, None, RoundingEngine::IterativeRelaxation).unwrap();
                        CellOutcome {
                            metrics: vec![
                                ("exact_opt_rho".into(), opt as f64),
                                ("pipeline_rho_star".into(), solved.rho_star as f64),
                                (
                                    "pipeline_augmentation".into(),
                                    f64::from(solved.augmentation),
                                ),
                            ],
                            flows: sat.n() as u64,
                            engine_mode: "exact",
                            telemetry: None,
                        }
                    },
                ),
                CellSpec::new(
                    "table_gaps/rtt_unsatisfiable",
                    vec![("gadget", "rtt_unsatisfiable".to_string())],
                    || {
                        let unsat = rtt_reduction(&small_unsatisfiable_rtt());
                        let at3 = lp_feasible(&unsat, 3).unwrap();
                        let at4 = lp_feasible(&unsat, 4).unwrap();
                        CellOutcome {
                            metrics: vec![
                                ("lp_feasible_rho3".into(), if at3 { 1.0 } else { 0.0 }),
                                ("lp_feasible_rho4".into(), if at4 { 1.0 } else { 0.0 }),
                            ],
                            flows: unsat.n() as u64,
                            engine_mode: "lp",
                            telemetry: None,
                        }
                    },
                ),
                CellSpec::new(
                    "table_gaps/figure_4b",
                    vec![("gadget", "figure_4b".to_string())],
                    || {
                        let f4b = figure_4b();
                        let (opt, _) = min_max_response(&f4b);
                        let mut metrics = vec![("offline_opt_rho".into(), opt as f64)];
                        for (name, sched) in [
                            ("online_MaxCard", run_policy(&f4b, &mut MaxCard::default())),
                            (
                                "online_MinRTime",
                                run_policy(&f4b, &mut MinRTime::default()),
                            ),
                            (
                                "online_MaxWeight",
                                run_policy(&f4b, &mut MaxWeight::default()),
                            ),
                        ] {
                            let m = metrics::evaluate(&f4b, &sched);
                            metrics.push((name.into(), m.max_response as f64));
                        }
                        CellOutcome {
                            metrics,
                            flows: f4b.n() as u64,
                            engine_mode: "exact",
                            telemetry: None,
                        }
                    },
                ),
            ]
        }),
    }
}

/// Rounding-engine ablation: IterativeRelaxation vs BeckFiala on the
/// same time-constrained instances.
pub fn table_rounding_ablation() -> Experiment {
    Experiment {
        id: "table_rounding_ablation",
        description: "rounding ablation — IterativeRelaxation vs BeckFiala augmentation and time",
        build: Box::new(|scale| {
            let configs: Vec<(usize, u32)> = if scale.paper {
                vec![(15, 1), (30, 1), (30, 3), (60, 3), (90, 3)]
            } else if scale.smoke {
                vec![(10, 1)]
            } else {
                vec![(15, 1), (30, 1), (30, 3), (60, 3)]
            };
            let trials = scale.tiered_trials(2, 5, 10);
            let mut cells = Vec::new();
            for &(n, dmax) in &configs {
                for engine in [
                    RoundingEngine::IterativeRelaxation,
                    RoundingEngine::BeckFiala,
                ] {
                    let name = match engine {
                        RoundingEngine::IterativeRelaxation => "IterativeRelaxation",
                        RoundingEngine::BeckFiala => "BeckFiala",
                    };
                    cells.push(CellSpec::new(
                        format!("table_rounding_ablation/n{n}/dmax{dmax}/{name}"),
                        vec![
                            ("n", n.to_string()),
                            ("dmax", dmax.to_string()),
                            ("engine", name.to_string()),
                            ("trials", trials.to_string()),
                        ],
                        move || rounding_cell(n, dmax, engine, trials),
                    ));
                }
            }
            cells
        }),
    }
}

fn rounding_cell(n: usize, dmax: u32, engine: RoundingEngine, trials: u64) -> CellOutcome {
    let mut aug_sum = 0u64;
    let mut aug_max = 0u32;
    let mut ms_sum = 0.0;
    let mut solved = 0u64;
    for k in 0..trials {
        let mut rng = SmallRng::seed_from_u64(0xab1a + (n as u64 * 31) + k);
        let p = GenParams {
            m: 4,
            m_out: 4,
            cap: 2 * dmax,
            n,
            max_demand: dmax,
            max_release: (n / 3) as u64,
        };
        let inst = random_instance(&mut rng, &p);
        let rho = (n as u64 / 2).max(3);
        let tc = TimeConstrained::from_response_bound(&inst, rho);
        let start = Instant::now();
        if let Some(res) = round_time_constrained(&tc, engine).expect("solver") {
            ms_sum += start.elapsed().as_secs_f64() * 1e3;
            aug_sum += u64::from(res.augmentation);
            aug_max = aug_max.max(res.augmentation);
            solved += 1;
        }
    }
    CellOutcome {
        metrics: vec![
            (
                "mean_augmentation".into(),
                aug_sum as f64 / solved.max(1) as f64,
            ),
            ("max_augmentation".into(), f64::from(aug_max)),
            ("mean_ms".into(), ms_sum / solved.max(1) as f64),
            ("solved".into(), solved as f64),
        ],
        flows: n as u64 * trials,
        engine_mode: "offline",
        telemetry: None,
    }
}

/// ART window-choice ablation: total response as the realization window
/// `h` grows past the adaptive minimum. One cell per `n` sweeping every
/// `h` multiple, so the expensive shared pseudo-schedules are rounded
/// once per `n` (the legacy bin's cost profile), not once per multiple.
pub fn table_window_ablation() -> Experiment {
    Experiment {
        id: "table_window_ablation",
        description: "ART window ablation — total response vs realization window h",
        build: Box::new(|scale| {
            let ns: Vec<usize> = if scale.paper {
                vec![24, 48, 96, 144]
            } else if scale.smoke {
                vec![16]
            } else {
                vec![24, 48, 96]
            };
            let trials = scale.tiered_trials(2, 5, 10);
            ns.into_iter()
                .map(|n| {
                    CellSpec::new(
                        format!("table_window_ablation/n{n}"),
                        vec![
                            ("n", n.to_string()),
                            ("c", "2".to_string()),
                            ("trials", trials.to_string()),
                        ],
                        move || window_cell(n, trials),
                    )
                })
                .collect()
        }),
    }
}

fn window_cell(n: usize, trials: u64) -> CellOutcome {
    let c = 2u32;
    let mut pseudos = Vec::new();
    let mut insts = Vec::new();
    for k in 0..trials {
        let mut rng = SmallRng::seed_from_u64(0x11d0 + (n as u64) * 37 + k);
        let inst = random_instance(
            &mut rng,
            &GenParams::unit((n / 6).clamp(3, 10), n, (n / 4) as u64),
        );
        pseudos.push(iterative_rounding(&inst).pseudo);
        insts.push(inst);
    }
    let h_star: u64 = (0..trials as usize)
        .map(|k| realize_schedule(&insts[k], &pseudos[k], c).window)
        .max()
        .unwrap_or(1);
    let mut metrics_out = vec![("h_star".into(), h_star as f64)];
    for mult in [1u64, 2, 4, 8] {
        let h = h_star * mult;
        let mut total = 0u64;
        let mut solved = 0u64;
        for k in 0..trials as usize {
            if let Some(r) = realize_schedule_with_window(&insts[k], &pseudos[k], c, h) {
                total += metrics::evaluate(&insts[k], &r.schedule).total_response;
                solved += 1;
            }
        }
        metrics_out.push((
            format!("mean_total_response_h{mult}x"),
            total as f64 / solved.max(1) as f64,
        ));
    }
    CellOutcome {
        metrics: metrics_out,
        flows: n as u64 * trials,
        engine_mode: "offline",
        telemetry: None,
    }
}

/// Co-flow extension: SEBF / FIFO / Fair vs the bottleneck lower bound.
/// One cell per `(m, k)` config evaluating all three orderings on the
/// same generated instances, so instance generation and the bottleneck
/// bound run once per trial (the legacy bin's cost profile).
pub fn table_coflow() -> Experiment {
    Experiment {
        id: "table_coflow",
        description: "co-flow extension — SEBF/FIFO/Fair vs the bottleneck lower bound",
        build: Box::new(|scale| {
            let configs: Vec<(usize, usize, usize)> = if scale.paper {
                vec![(6, 4, 6), (8, 8, 10), (12, 12, 20), (16, 16, 28)]
            } else if scale.smoke {
                vec![(4, 3, 4)]
            } else {
                vec![(6, 4, 6), (8, 8, 10), (12, 12, 20)]
            };
            let trials = scale.tiered_trials(2, 10, 10);
            configs
                .into_iter()
                .map(|(m, k, w)| {
                    CellSpec::new(
                        format!("table_coflow/m{m}/k{k}"),
                        vec![
                            ("m", m.to_string()),
                            ("coflows", k.to_string()),
                            ("max_width", w.to_string()),
                            ("trials", trials.to_string()),
                        ],
                        move || coflow_cell(m, k, w, trials),
                    )
                })
                .collect()
        }),
    }
}

/// The legacy bin's shuffle-workload generator (seed formula preserved).
fn random_coflows(rng: &mut SmallRng, m: usize, k: usize, max_width: usize) -> CoflowInstance {
    let mut b = CoflowBuilder::new(Switch::uniform(m, m, 1));
    let mut release = 0u64;
    for _ in 0..k {
        b.coflow(release);
        let width = rng.gen_range(1..=max_width);
        for _ in 0..width {
            b.flow(rng.gen_range(0..m as u32), rng.gen_range(0..m as u32), 1);
        }
        release += rng.gen_range(0..3u64);
    }
    b.build().expect("generator produces valid instances")
}

fn coflow_cell(m: usize, k: usize, w: usize, trials: u64) -> CellOutcome {
    const ORDERS: [CoflowOrdering; 3] = [
        CoflowOrdering::Sebf,
        CoflowOrdering::Fifo,
        CoflowOrdering::Fair,
    ];
    let mut totals = [0.0f64; 3];
    let mut maxes = [0.0f64; 3];
    let mut lb_total = 0.0;
    let mut lb_max = 0.0;
    let mut flows = 0u64;
    for trial in 0..trials {
        let mut rng = SmallRng::seed_from_u64(0xc0f + (m as u64) * 1009 + trial);
        let ci = random_coflows(&mut rng, m, k, w);
        let (t_lb, m_lb) = bottleneck_lower_bound(&ci);
        lb_total += t_lb as f64;
        lb_max += m_lb as f64;
        for (oi, &order) in ORDERS.iter().enumerate() {
            let met = coflow_evaluate(&ci, &schedule_coflows(&ci, order));
            totals[oi] += met.total_response as f64;
            maxes[oi] += met.max_response as f64;
        }
        flows += k as u64;
    }
    let t = trials as f64;
    let mut metrics_out = vec![
        ("total_lb".into(), lb_total / t),
        ("max_lb".into(), lb_max / t),
    ];
    for (oi, order) in ORDERS.iter().enumerate() {
        let name = order.name().to_lowercase();
        metrics_out.push((format!("{name}_mean_total"), totals[oi] / t));
        metrics_out.push((format!("{name}_mean_max"), maxes[oi] / t));
    }
    CellOutcome {
        metrics: metrics_out,
        flows,
        engine_mode: "coflow",
        telemetry: None,
    }
}
