//! Trace replay: run every policy over an on-disk arrival trace.
//!
//! Unlike the static registry entries, this experiment is built at
//! runtime from a trace file (`flowsched bench --trace FILE`). Two
//! replay substrates share the cell shape:
//!
//! - **In-memory** (default): the trace is loaded and validated once,
//!   shared across cells via [`Arc`], and each `(policy, trace)` cell
//!   replays the shared copy.
//! - **Streaming** (`--stream`): the file is validated once by a
//!   streaming scan, and each cell re-reads it through
//!   [`fss_trace::StreamingTraceSource`] at O(chunk) memory — the path
//!   that lets traces far larger than RAM through the registry.
//!
//! Schedules are bit-identical across substrates (pinned by the sim
//! crate's differential suite), but the cells carry a `source` param so
//! artifacts from the two modes never alias under checkpoint/resume.

use std::path::Path;
use std::sync::Arc;

use fss_sim::arrival_trace::{ArrivalTrace, TraceSource};
use fss_sim::PolicyKind;

use crate::registry::{CellOutcome, CellSpec, Experiment};

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::MaxCard,
    PolicyKind::MinRTime,
    PolicyKind::MaxWeight,
    PolicyKind::FifoGreedy,
];

/// What one replay cell measured, independent of substrate.
fn outcome(
    stats: fss_engine::StreamStats,
    flows: u64,
    tele: fss_engine::EngineTelemetry,
    instrument: bool,
) -> CellOutcome {
    CellOutcome {
        metrics: vec![
            ("mean_response".into(), stats.mean_response()),
            ("max_response".into(), stats.max_response as f64),
            ("makespan".into(), stats.makespan as f64),
            ("peak_queue".into(), stats.peak_queue as f64),
        ],
        flows,
        engine_mode: "stream",
        telemetry: instrument.then(|| tele.snapshot()),
    }
}

fn telemetry(instrument: bool) -> fss_engine::EngineTelemetry {
    if instrument {
        fss_engine::EngineTelemetry::enabled()
    } else {
        fss_engine::EngineTelemetry::disabled()
    }
}

/// Build the trace-replay experiment from a trace file. The file is
/// read and validated here, once — in-memory cells replay the shared
/// trace; streaming cells (`stream = true`) re-read the file at
/// O(chunk) memory.
pub fn trace_replay(path: &Path, stream: bool) -> Result<Experiment, String> {
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    if stream {
        return trace_replay_streaming(path, name);
    }
    let trace =
        Arc::new(ArrivalTrace::load(path).map_err(|e| format!("trace {}: {e}", path.display()))?);
    let ports = trace.ports;
    let horizon = trace.horizon();
    let flows = trace.len() as u64;
    Ok(Experiment::new(
        "trace_replay",
        "replay an arrival trace through every policy via the streaming engine",
        move |scale| {
            let instrument = scale.telemetry;
            POLICIES
                .iter()
                .map(|&policy| {
                    let trace = trace.clone();
                    let name = name.clone();
                    CellSpec::new(
                        format!("trace_replay/{}/{name}", policy.name()),
                        vec![
                            ("policy", policy.name().to_string()),
                            ("trace", name.clone()),
                            ("source", "mem".to_string()),
                            ("ports", ports.to_string()),
                            ("horizon", horizon.to_string()),
                        ],
                        move || {
                            let mut tele = telemetry(instrument);
                            let stats = fss_engine::run_stream_telemetry(
                                TraceSource::new(trace.clone()),
                                fss_engine::EngineMode::Exact(policy.to_engine()),
                                &mut tele,
                                |_, _, _| {},
                            );
                            outcome(stats, flows, tele, instrument)
                        },
                    )
                })
                .collect()
        },
    ))
}

/// The streaming substrate: validate once by scan, then let each cell
/// re-read the file through the chunk-buffered reader.
fn trace_replay_streaming(path: &Path, name: String) -> Result<Experiment, String> {
    let summary = fss_trace::scan(path).map_err(|e| format!("trace {}: {e}", path.display()))?;
    let path = Arc::new(path.to_path_buf());
    Ok(Experiment::new(
        "trace_replay",
        "replay an arrival trace through every policy via the streaming engine",
        move |scale| {
            let instrument = scale.telemetry;
            POLICIES
                .iter()
                .map(|&policy| {
                    let path = path.clone();
                    let name = name.clone();
                    CellSpec::new(
                        format!("trace_replay/{}/{name}", policy.name()),
                        vec![
                            ("policy", policy.name().to_string()),
                            ("trace", name.clone()),
                            ("source", "stream".to_string()),
                            ("ports", summary.ports.to_string()),
                            ("horizon", summary.horizon.to_string()),
                        ],
                        move || {
                            let mut tele = telemetry(instrument);
                            // The builder's scan already validated the
                            // file; a mid-replay error here means it
                            // changed under us — fail loudly.
                            let source = fss_trace::StreamingTraceSource::open(path.as_ref())
                                .unwrap_or_else(|e| panic!("reopen trace {}: {e}", path.display()));
                            let errors = source.error_handle();
                            let stats = fss_engine::run_stream_telemetry(
                                source,
                                fss_engine::EngineMode::Exact(policy.to_engine()),
                                &mut tele,
                                |_, _, _| {},
                            );
                            if let Some(e) = errors.get() {
                                panic!("trace {} changed mid-replay: {e}", path.display());
                            }
                            outcome(stats, summary.flows, tele, instrument)
                        },
                    )
                })
                .collect()
        },
    ))
}
