//! Trace replay: run every policy over an on-disk arrival trace.
//!
//! Unlike the static registry entries, this experiment is built at
//! runtime from a trace file (`flowsched bench --trace FILE`): the trace
//! is loaded and validated once, shared across cells via [`Arc`], and
//! each `(policy, trace)` cell streams it through the engine via a
//! [`fss_sim::ScenarioSpec`]-shaped run — the paper's heuristics on a replayable
//! workload instead of a seed formula.

use std::path::Path;
use std::sync::Arc;

use fss_sim::arrival_trace::{ArrivalTrace, TraceSource};
use fss_sim::PolicyKind;

use crate::registry::{CellOutcome, CellSpec, Experiment};

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::MaxCard,
    PolicyKind::MinRTime,
    PolicyKind::MaxWeight,
    PolicyKind::FifoGreedy,
];

/// Build the trace-replay experiment from a trace file. The file is read
/// and validated here, once; cells only replay the in-memory trace.
pub fn trace_replay(path: &Path) -> Result<Experiment, String> {
    let trace =
        Arc::new(ArrivalTrace::load(path).map_err(|e| format!("trace {}: {e}", path.display()))?);
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let ports = trace.ports;
    let horizon = trace.horizon();
    let flows = trace.len() as u64;
    Ok(Experiment::new(
        "trace_replay",
        "replay an arrival trace through every policy via the streaming engine",
        move |scale| {
            let instrument = scale.telemetry;
            POLICIES
                .iter()
                .map(|&policy| {
                    let trace = trace.clone();
                    let name = name.clone();
                    CellSpec::new(
                        format!("trace_replay/{}/{name}", policy.name()),
                        vec![
                            ("policy", policy.name().to_string()),
                            ("trace", name.clone()),
                            ("ports", ports.to_string()),
                            ("horizon", horizon.to_string()),
                        ],
                        move || {
                            let mut tele = if instrument {
                                fss_engine::EngineTelemetry::enabled()
                            } else {
                                fss_engine::EngineTelemetry::disabled()
                            };
                            let stats = fss_engine::run_stream_telemetry(
                                TraceSource::new(trace.clone()),
                                fss_engine::EngineMode::Exact(policy.to_engine()),
                                &mut tele,
                                |_, _, _| {},
                            );
                            CellOutcome {
                                metrics: vec![
                                    ("mean_response".into(), stats.mean_response()),
                                    ("max_response".into(), stats.max_response as f64),
                                    ("makespan".into(), stats.makespan as f64),
                                    ("peak_queue".into(), stats.peak_queue as f64),
                                ],
                                flows,
                                engine_mode: "stream",
                                telemetry: instrument.then(|| tele.snapshot()),
                            }
                        },
                    )
                })
                .collect()
        },
    ))
}
