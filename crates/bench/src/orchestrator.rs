//! The parallel benchmark orchestrator.
//!
//! [`run_bench`] expands the selected experiments into one flat cell
//! list, executes it through the rayon shim's dynamic work-stealing
//! scheduler (so a handful of heavy `M = 4m` or LP cells can't serialize
//! behind one worker's chunk), streams every finished cell as a JSONL
//! line, and writes one aggregated, schema-validated
//! `BENCH_<experiment>.json` artifact per experiment via
//! [`fss_sim::report`].

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use fss_sim::report::{
    bench_artifact_name, bench_cell_to_jsonl, bench_report_to_json, validate_bench_report,
    BenchCell, BenchReport, BENCH_SCHEMA_VERSION,
};
use rayon::prelude::*;

use crate::registry::{select, CellSpec, Scale};

/// File the orchestrator streams per-cell results into, in completion
/// order (one compact JSON object per line).
pub const CELLS_STREAM_NAME: &str = "BENCH_cells.jsonl";

/// Options for one orchestrator run (the `flowsched bench` flags).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Select experiments: exact id, else substring (`None` = all).
    pub filter: Option<String>,
    /// CI-sized grids.
    pub smoke: bool,
    /// Paper-scale figure grids (150x150 heuristics; overrides `smoke`).
    pub paper: bool,
    /// Worker-thread cap (`0` = machine default / `RAYON_NUM_THREADS`).
    pub jobs: usize,
    /// Directory artifacts are written into (created on demand).
    pub out_dir: PathBuf,
    /// Override trials per cell.
    pub trials: Option<u64>,
    /// Replay this arrival-trace file as the `trace_replay` experiment.
    /// Without `filter`, the run is the trace replay alone; with one, the
    /// replay joins the selected registry experiments.
    pub trace: Option<PathBuf>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            filter: None,
            smoke: false,
            paper: false,
            jobs: 0,
            out_dir: crate::out_dir(),
            trials: None,
            trace: None,
        }
    }
}

/// Run the selected experiments and persist their artifacts.
///
/// Returns the in-memory reports in registry order. Every report has
/// also been written to `<out_dir>/BENCH_<experiment>.json`, and every
/// cell streamed to `<out_dir>/BENCH_cells.jsonl` as it completed.
pub fn run_bench(opts: &BenchOptions) -> Result<Vec<BenchReport>, String> {
    // `--trace` without a filter runs the trace replay alone; with a
    // filter the replay joins the selected registry experiments.
    let mut selected = match (&opts.filter, &opts.trace) {
        (None, Some(_)) => Vec::new(),
        (filter, _) => select(filter.as_deref()),
    };
    if selected.is_empty() && (opts.filter.is_some() || opts.trace.is_none()) {
        return Err(format!(
            "no experiment matches filter {:?}; known ids: {}",
            opts.filter.as_deref().unwrap_or("<all>"),
            crate::registry::registry()
                .iter()
                .map(|e| e.id)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if let Some(path) = &opts.trace {
        selected.push(crate::experiments::trace_replay::trace_replay(path)?);
    }
    // Always install the cap: `0` restores the shim's automatic default
    // (RAYON_NUM_THREADS / available parallelism), so a jobs=0 run after
    // a capped one isn't stuck on the previous cap.
    rayon::ThreadPoolBuilder::new()
        .num_threads(opts.jobs)
        .build_global()
        .map_err(|e| e.to_string())?;
    let jobs = rayon::current_num_threads() as u64;
    let scale = Scale {
        smoke: opts.smoke,
        paper: opts.paper,
        trials: opts.trials,
    };

    // Expand to the flat cell list the executor balances over.
    struct FlatCell {
        exp: usize,
        idx: usize,
        spec: CellSpec,
    }
    let mut flat: Vec<FlatCell> = Vec::new();
    for (exp, e) in selected.iter().enumerate() {
        for (idx, spec) in (e.build)(&scale).into_iter().enumerate() {
            flat.push(FlatCell { exp, idx, spec });
        }
    }
    if flat.is_empty() {
        return Err("selected experiments expanded to zero cells".into());
    }

    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("create {}: {e}", opts.out_dir.display()))?;
    let stream_path = opts.out_dir.join(CELLS_STREAM_NAME);
    let stream = std::fs::File::create(&stream_path)
        .map_err(|e| format!("create {}: {e}", stream_path.display()))?;
    let stream = Mutex::new(std::io::BufWriter::new(stream));

    // Execute every cell through the work-stealing scheduler; stream
    // each as it finishes (completion order), keep (exp, idx) so the
    // aggregate reports come out in declaration order.
    let started = Instant::now();
    let mut executed: Vec<(usize, usize, BenchCell)> = flat
        .par_iter()
        .map(|fc| {
            let t0 = Instant::now();
            let outcome = (fc.spec.run)();
            let cell = BenchCell {
                cell_id: fc.spec.id.clone(),
                params: fc.spec.params.clone(),
                metrics: outcome.metrics,
                wall_s: t0.elapsed().as_secs_f64(),
                flows: outcome.flows,
                engine_mode: outcome.engine_mode.to_string(),
            };
            let line = bench_cell_to_jsonl(&cell);
            {
                let mut w = stream.lock().expect("jsonl writer");
                let _ = writeln!(w, "{line}");
            }
            (fc.exp, fc.idx, cell)
        })
        .collect();
    let total_wall_s = started.elapsed().as_secs_f64();
    stream
        .into_inner()
        .expect("jsonl writer")
        .flush()
        .map_err(|e| format!("flush {}: {e}", stream_path.display()))?;

    executed.sort_by_key(|&(exp, idx, _)| (exp, idx));
    let mut reports = Vec::with_capacity(selected.len());
    for (exp, e) in selected.iter().enumerate() {
        let cells: Vec<BenchCell> = executed
            .iter()
            .filter(|&&(x, _, _)| x == exp)
            .map(|(_, _, c)| c.clone())
            .collect();
        let report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: e.id.to_string(),
            description: e.description.to_string(),
            smoke: opts.smoke,
            jobs,
            total_wall_s,
            cells,
        };
        validate_bench_report(&report)?;
        let path = opts.out_dir.join(bench_artifact_name(e.id));
        std::fs::write(&path, bench_report_to_json(&report))
            .map_err(|err| format!("write {}: {err}", path.display()))?;
        reports.push(report);
    }
    Ok(reports)
}

/// List `(id, description)` for every registered experiment.
pub fn list_experiments() -> Vec<(&'static str, &'static str)> {
    crate::registry::registry()
        .iter()
        .map(|e| (e.id, e.description))
        .collect()
}
