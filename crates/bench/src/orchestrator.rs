//! The parallel benchmark orchestrator.
//!
//! [`run_bench`] expands the selected experiments into one flat cell
//! list, executes it through the rayon shim's dynamic work-stealing
//! scheduler (so a handful of heavy `M = 4m` or LP cells can't serialize
//! behind one worker's chunk), streams every finished cell as a JSONL
//! line, and writes one aggregated, schema-validated
//! `BENCH_<experiment>.json` artifact per experiment via
//! [`fss_sim::report`].

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use fss_flight::{
    read_spool, to_chrome, FlightRecorder, SpanKind, TraceSink, DEFAULT_SPOOL_MAX_EVENTS,
};
use fss_sim::report::{bench_cell_to_jsonl, BenchCell, BenchReport};
use rayon::prelude::*;

use crate::cells::{
    assemble_reports, execute_cell, flatten, scale_of, select_experiments, write_reports,
};
use crate::registry::Scale;

/// File the orchestrator streams per-cell results into, in completion
/// order (one compact JSON object per line).
pub const CELLS_STREAM_NAME: &str = "BENCH_cells.jsonl";

/// Options for one orchestrator run (the `flowsched bench` flags).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Select experiments: exact id, else substring (`None` = all).
    pub filter: Option<String>,
    /// CI-sized grids.
    pub smoke: bool,
    /// Paper-scale figure grids (150x150 heuristics; overrides `smoke`).
    pub paper: bool,
    /// Worker-thread cap (`0` = machine default / `RAYON_NUM_THREADS`).
    pub jobs: usize,
    /// Directory artifacts are written into (created on demand).
    pub out_dir: PathBuf,
    /// Override trials per cell.
    pub trials: Option<u64>,
    /// Replay this arrival-trace file as the `trace_replay` experiment.
    /// Without `filter`, the run is the trace replay alone; with one, the
    /// replay joins the selected registry experiments.
    pub trace: Option<PathBuf>,
    /// Replay `--trace` through the O(chunk)-memory streaming reader
    /// instead of loading the file: traces far larger than RAM replay
    /// with identical schedules (`flowsched bench --trace FILE --stream`).
    pub stream_trace: bool,
    /// Record round-loop telemetry per cell and print a live progress
    /// line (cells done/total, aggregate flows/s, slowest stage) to
    /// stderr as cells complete (`flowsched bench --progress`).
    pub progress: bool,
    /// Worker threads inside each cell (`flowsched bench --cores N`):
    /// trial-level parallelism for experiments that support it. Composes
    /// with `jobs` (cells in flight); the orchestrator caps the product
    /// at the machine's available parallelism. `0`/`1` = sequential
    /// cells. Never changes results — only wall time.
    pub cores: usize,
    /// Write a Chrome Trace Format JSON of the run here (`flowsched
    /// bench --flight-trace OUT.json`): one round-tagged `Cell` span
    /// per executed cell (round = flat-list position), spooled next to
    /// the output as `OUT.json.spool.jsonl`. Tracing observes, never
    /// steers: cells are bit-identical with or without it.
    pub flight_trace: Option<PathBuf>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            filter: None,
            smoke: false,
            paper: false,
            jobs: 0,
            out_dir: crate::out_dir(),
            trials: None,
            trace: None,
            stream_trace: false,
            progress: false,
            cores: 1,
            flight_trace: None,
        }
    }
}

/// Shared progress state the orchestrator (and the dist coordinator)
/// fold completed cells into: completion counters plus the run-level
/// telemetry merge behind one line of status output.
pub struct ProgressLine {
    total: usize,
    done: u64,
    flows: u64,
    merged: fss_telemetry::TelemetrySnapshot,
    started: Instant,
}

impl ProgressLine {
    /// Start tracking a run of `total` cells.
    pub fn new(total: usize) -> ProgressLine {
        ProgressLine {
            total,
            done: 0,
            flows: 0,
            merged: fss_telemetry::TelemetrySnapshot::new(),
            started: Instant::now(),
        }
    }

    /// Fold one completed cell in and return the refreshed status line.
    pub fn record(&mut self, cell: &BenchCell) -> String {
        self.done += 1;
        self.flows += cell.flows;
        if let Some(snap) = &cell.telemetry {
            self.merged.merge(snap);
        }
        self.line()
    }

    /// Fold a worker-level snapshot in (no cell attached) — the dist
    /// coordinator merges heartbeat payloads through this.
    pub fn merge_snapshot(&mut self, snap: &fss_telemetry::TelemetrySnapshot) {
        self.merged.merge(snap);
    }

    /// The run-level telemetry merged so far.
    pub fn merged(&self) -> &fss_telemetry::TelemetrySnapshot {
        &self.merged
    }

    /// Render the status line: `cells 3/24 · 1234.5 flows/s · slowest
    /// stage match_repair`. Stage detail appears once any instrumented
    /// cell has been folded in.
    pub fn line(&self) -> String {
        self.line_at(self.started.elapsed().as_secs_f64())
    }

    /// [`ProgressLine::line`] at an explicit elapsed time (seconds) —
    /// split out so the sub-timer-resolution path is testable.
    pub fn line_at(&self, elapsed_s: f64) -> String {
        let mut line = format!(
            "cells {}/{} · {:.1} flows/s",
            self.done,
            self.total,
            flows_per_sec(self.flows, elapsed_s)
        );
        if let Some(stage) = self.merged.slowest_stage() {
            line.push_str(&format!(" · slowest stage {}", stage.stage));
        }
        line
    }
}

/// A displayable flow rate: `flows / elapsed` with the denominator
/// clamped to the timer resolution (1 ms). Cells that finish under the
/// clock's resolution used to divide by a ~1e-9 epsilon and print a
/// garbage ~1e9x rate (or `inf` for a literal zero); now they cap at
/// the honest "at least this fast over one millisecond" bound, and a
/// zero-flow line is exactly `0.0`.
pub fn flows_per_sec(flows: u64, elapsed_s: f64) -> f64 {
    if flows == 0 {
        return 0.0;
    }
    let clamped = if elapsed_s.is_finite() {
        elapsed_s.max(1e-3)
    } else {
        1e-3
    };
    flows as f64 / clamped
}

/// Run the selected experiments and persist their artifacts.
///
/// Returns the in-memory reports in registry order. Every report has
/// also been written to `<out_dir>/BENCH_<experiment>.json`, and every
/// cell streamed to `<out_dir>/BENCH_cells.jsonl` as it completed.
pub fn run_bench(opts: &BenchOptions) -> Result<Vec<BenchReport>, String> {
    let selected = select_experiments(opts)?;
    // Always install the cap: `0` restores the shim's automatic default
    // (RAYON_NUM_THREADS / available parallelism), so a jobs=0 run after
    // a capped one isn't stuck on the previous cap.
    rayon::ThreadPoolBuilder::new()
        .num_threads(opts.jobs)
        .build_global()
        .map_err(|e| e.to_string())?;
    let jobs = rayon::current_num_threads() as u64;
    let mut scale = scale_of(opts);
    // `--jobs` (cells in flight) and `--cores` (threads per cell)
    // multiply; cap the product at the machine's parallelism so a
    // mis-sized pair degrades to fewer threads instead of thrashing.
    // Safe because cores never changes results, only wall time.
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if scale.cores > 1 && jobs as usize * scale.cores > avail {
        let capped = (avail / jobs as usize).max(1);
        eprintln!(
            "[fss-bench] --cores {} x {} jobs oversubscribes {} available \
             thread(s); capping cores at {} (results are unchanged)",
            scale.cores, jobs, avail, capped
        );
        scale.cores = capped;
    }
    let flat = flatten(&selected, &scale)?;

    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("create {}: {e}", opts.out_dir.display()))?;
    let stream_path = opts.out_dir.join(CELLS_STREAM_NAME);
    let stream = std::fs::File::create(&stream_path)
        .map_err(|e| format!("create {}: {e}", stream_path.display()))?;
    let stream = Mutex::new(std::io::BufWriter::new(stream));

    // Flight tracing: one round-tagged Cell span per executed cell.
    // The handle sits behind a mutex (cells are seconds-coarse, so the
    // lock is cold) and the sink drains after every cell, so even an
    // interrupted run leaves a readable spool.
    let flight = match &opts.flight_trace {
        None => None,
        Some(out) => {
            let mut spool = out.as_os_str().to_os_string();
            spool.push(".spool.jsonl");
            let spool = PathBuf::from(spool);
            let recorder = FlightRecorder::new();
            let sink = TraceSink::create(&recorder, &spool, DEFAULT_SPOOL_MAX_EVENTS)
                .map_err(|e| format!("create flight spool {}: {e}", spool.display()))?;
            let handle = recorder.handle("cells");
            Some((sink, Mutex::new(handle), out.clone()))
        }
    };

    // Execute every cell through the work-stealing scheduler; stream
    // each as it finishes (completion order), keep (exp, idx) so the
    // aggregate reports come out in declaration order.
    let started = Instant::now();
    let progress = opts
        .progress
        .then(|| Mutex::new(ProgressLine::new(flat.len())));
    let indexed: Vec<(u64, &crate::cells::FlatCell)> = flat
        .iter()
        .enumerate()
        .map(|(pos, fc)| (pos as u64, fc))
        .collect();
    let executed: Vec<(usize, usize, BenchCell)> = indexed
        .par_iter()
        .map(|&(pos, fc)| {
            let cell_t0 = Instant::now();
            let cell = execute_cell(fc);
            if let Some((sink, handle, _)) = &flight {
                {
                    let mut h = handle.lock().expect("flight handle");
                    h.round_tag(pos);
                    h.record(SpanKind::Cell, cell_t0, Instant::now());
                }
                sink.drain();
            }
            let line = bench_cell_to_jsonl(&cell);
            {
                let mut w = stream.lock().expect("jsonl writer");
                let _ = writeln!(w, "{line}");
            }
            if let Some(p) = &progress {
                let status = p.lock().expect("progress line").record(&cell);
                eprintln!("[fss-bench] {status} · {}", cell.cell_id);
            }
            (fc.exp, fc.idx, cell)
        })
        .collect();
    let total_wall_s = started.elapsed().as_secs_f64();
    stream
        .into_inner()
        .expect("jsonl writer")
        .flush()
        .map_err(|e| format!("flush {}: {e}", stream_path.display()))?;

    if let Some((sink, _, out)) = &flight {
        let s = sink.finish();
        let spool = read_spool(&s.path)?;
        std::fs::write(out, to_chrome(&spool))
            .map_err(|e| format!("write {}: {e}", out.display()))?;
        eprintln!(
            "[fss-bench] flight trace: {} ({} span(s), {} dropped; spool {})",
            out.display(),
            s.events,
            s.dropped,
            s.path.display()
        );
    }

    let reports = assemble_reports(&selected, opts.smoke, jobs, total_wall_s, executed)?;
    write_reports(&reports, &opts.out_dir)?;
    Ok(reports)
}

/// Per-experiment cell counts at every registry tier, for shard
/// planning (`flowsched bench --list`): `(id, description, [smoke,
/// full, paper])`.
pub fn registry_cell_counts() -> Vec<(&'static str, &'static str, [usize; 3])> {
    crate::registry::registry()
        .iter()
        .map(|e| {
            let count = |smoke: bool, paper: bool| {
                (e.build)(&Scale {
                    smoke,
                    paper,
                    trials: None,
                    telemetry: false,
                    cores: 1,
                })
                .len()
            };
            (
                e.id,
                e.description,
                [count(true, false), count(false, false), count(false, true)],
            )
        })
        .collect()
}

/// List `(id, description)` for every registered experiment.
pub fn list_experiments() -> Vec<(&'static str, &'static str)> {
    crate::registry::registry()
        .iter()
        .map(|e| (e.id, e.description))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_sim::report::BenchCell;

    fn cell_with_flows(flows: u64) -> BenchCell {
        BenchCell::new(
            "exp/cell",
            vec![("m".into(), "4".into())],
            Vec::new(),
            0.0, // finished under the timer resolution
            flows,
            "exact",
        )
    }

    #[test]
    fn flows_per_sec_is_finite_and_bounded_at_zero_elapsed() {
        // The zero-elapsed path: no inf, no NaN, no ~1e9x garbage.
        assert_eq!(flows_per_sec(0, 0.0), 0.0);
        let r = flows_per_sec(1_000, 0.0);
        assert!(r.is_finite());
        assert_eq!(r, 1_000.0 / 1e-3, "clamped to the 1 ms resolution");
        // Sub-resolution elapsed clamps the same way.
        assert_eq!(flows_per_sec(1_000, 1e-9), 1_000.0 / 1e-3);
        // A hostile elapsed (NaN from a broken clock diff) still renders.
        assert!(flows_per_sec(5, f64::NAN).is_finite());
        // Normal path is untouched.
        assert_eq!(flows_per_sec(500, 2.0), 250.0);
    }

    #[test]
    fn progress_line_renders_sanely_for_an_instant_cell() {
        let mut p = ProgressLine::new(2);
        let line = p.record(&cell_with_flows(10_000));
        assert!(line.starts_with("cells 1/2"), "{line}");
        // Re-render at an explicit zero elapsed: the displayed rate is
        // the clamped bound, not inf/garbage.
        let line = p.line_at(0.0);
        assert!(line.contains("10000000.0 flows/s"), "{line}");
        assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
        let line = p.line_at(10.0);
        assert!(line.contains("1000.0 flows/s"), "{line}");
    }
}
