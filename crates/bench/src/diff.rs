//! Regression gating over persisted `BENCH_*.json` artifacts.
//!
//! CI uploads one [`BenchReport`] per experiment per build;
//! [`diff_artifacts`] compares two of them cell by cell: every metric's
//! delta is reported, and throughput (flows/s) drops beyond the tolerance
//! — or cells that disappeared outright — count as regressions. The CLI
//! (`flowsched bench --diff OLD.json NEW.json`) exits nonzero when any
//! regression is found, which is all a CI gate needs.
//!
//! Metric *values* are deterministic for a given seed, so value changes
//! are surfaced in the rendered table but do not gate: a legitimate code
//! change (a new tie-break, a different workload) moves them on purpose.
//! Throughput is the machine-sensitive axis the gate watches.

use std::path::Path;

use fss_sim::report::{bench_report_from_json, BenchCell, BenchReport};

/// Default flows/s regression tolerance: 30% absorbs normal CI-runner
/// noise while catching order-of-magnitude slowdowns.
pub const DEFAULT_TOLERANCE_PCT: f64 = 30.0;

/// One compared cell.
#[derive(Debug, Clone)]
pub struct CellDelta {
    /// The cell id (present in both reports).
    pub cell_id: String,
    /// Per-metric `(name, old, new)` for metrics present in both cells.
    pub metrics: Vec<(String, f64, f64)>,
    /// Old throughput in flows/s (0 when not meaningful).
    pub old_flows_per_s: f64,
    /// New throughput in flows/s.
    pub new_flows_per_s: f64,
    /// Throughput change in percent (negative = slower; 0 when either
    /// side has no throughput).
    pub speed_change_pct: f64,
    /// Do the cells disagree on any metric (a value changed, or a
    /// metric appeared/vanished)? Gates only under `--strict-metrics`.
    pub metric_drift: bool,
    /// Did this cell regress (throughput beyond tolerance, or metric
    /// drift in strict mode)?
    pub regressed: bool,
}

/// The full comparison of two reports.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Experiment id of the old report.
    pub experiment: String,
    /// Flows/s drop (in percent) beyond which a cell regresses.
    pub tolerance_pct: f64,
    /// Whether metric drift gates (the sharded-vs-single-process
    /// differential mode: metric values are seed-deterministic, so any
    /// drift there is a correctness bug, while timing is noise).
    pub strict_metrics: bool,
    /// Cells present in both reports, in old-report order.
    pub cells: Vec<CellDelta>,
    /// Cell ids present only in the old report (each is a regression:
    /// coverage was lost).
    pub missing: Vec<String>,
    /// Cell ids present only in the new report (reported explicitly as
    /// added; never a regression).
    pub added: Vec<String>,
}

impl DiffReport {
    /// Number of regressions: vanished cells plus regressed cells.
    pub fn regressions(&self) -> usize {
        self.missing.len() + self.cells.iter().filter(|c| c.regressed).count()
    }

    /// Does the new report pass the gate?
    pub fn passes(&self) -> bool {
        self.regressions() == 0
    }
}

/// Compare two in-memory reports. `tolerance_pct` bounds the acceptable
/// flows/s drop per cell (e.g. `30.0` allows down to 70% of old speed).
pub fn diff_reports(old: &BenchReport, new: &BenchReport, tolerance_pct: f64) -> DiffReport {
    diff_reports_opts(old, new, tolerance_pct, false)
}

/// [`diff_reports`] with strict-metrics mode: any metric value drift
/// regresses, independent of throughput. Pair with `tolerance_pct =
/// 100` to gate *only* on coverage + values — the right setting for
/// comparing a multi-worker merged artifact against a single-process
/// run, where per-cell wall clocks are incomparable but every metric
/// must match exactly.
pub fn diff_reports_opts(
    old: &BenchReport,
    new: &BenchReport,
    tolerance_pct: f64,
    strict_metrics: bool,
) -> DiffReport {
    let find = |cells: &[BenchCell], id: &str| -> Option<usize> {
        cells.iter().position(|c| c.cell_id == id)
    };
    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for oc in &old.cells {
        let Some(ni) = find(&new.cells, &oc.cell_id) else {
            missing.push(oc.cell_id.clone());
            continue;
        };
        let nc = &new.cells[ni];
        let metrics: Vec<(String, f64, f64)> = oc
            .metrics
            .iter()
            .filter_map(|(name, old_v)| nc.metric(name).map(|new_v| (name.clone(), *old_v, new_v)))
            .collect();
        // Drift: a value changed, or the metric sets differ at all
        // (metrics.len() below counts only the common names).
        let metric_drift = metrics.len() != oc.metrics.len()
            || oc.metrics.len() != nc.metrics.len()
            || metrics.iter().any(|(_, o, n)| o != n);
        let (old_fps, new_fps) = (oc.flows_per_s(), nc.flows_per_s());
        let (speed_change_pct, regressed) = if old_fps > 0.0 && new_fps > 0.0 {
            let pct = (new_fps - old_fps) / old_fps * 100.0;
            (pct, pct < -tolerance_pct)
        } else if old_fps > 0.0 {
            // The cell used to process work and now reports none: its
            // throughput collapsed outright, which no tolerance excuses.
            (-100.0, true)
        } else {
            (0.0, false)
        };
        cells.push(CellDelta {
            cell_id: oc.cell_id.clone(),
            metrics,
            old_flows_per_s: old_fps,
            new_flows_per_s: new_fps,
            speed_change_pct,
            metric_drift,
            regressed: regressed || (strict_metrics && metric_drift),
        });
    }
    let added = new
        .cells
        .iter()
        .filter(|nc| find(&old.cells, &nc.cell_id).is_none())
        .map(|nc| nc.cell_id.clone())
        .collect();
    DiffReport {
        experiment: old.experiment.clone(),
        tolerance_pct,
        strict_metrics,
        cells,
        missing,
        added,
    }
}

/// Load, schema-validate, and compare two `BENCH_*.json` artifacts.
/// Errors on unreadable/invalid files or mismatched experiment ids.
pub fn diff_artifacts(
    old_path: &Path,
    new_path: &Path,
    tolerance_pct: f64,
) -> Result<DiffReport, String> {
    diff_artifacts_opts(old_path, new_path, tolerance_pct, false)
}

/// [`diff_artifacts`] with strict-metrics mode (see
/// [`diff_reports_opts`]).
pub fn diff_artifacts_opts(
    old_path: &Path,
    new_path: &Path,
    tolerance_pct: f64,
    strict_metrics: bool,
) -> Result<DiffReport, String> {
    let read = |path: &Path| -> Result<BenchReport, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        bench_report_from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let old = read(old_path)?;
    let new = read(new_path)?;
    if old.experiment != new.experiment {
        return Err(format!(
            "experiment mismatch: {} vs {} (diff compares artifacts of the same experiment)",
            old.experiment, new.experiment
        ));
    }
    Ok(diff_reports_opts(&old, &new, tolerance_pct, strict_metrics))
}

/// Render a diff as an aligned table plus a verdict line.
pub fn render_diff(diff: &DiffReport) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{} — {} cell(s) compared, tolerance {:.0}%{}\n",
        diff.experiment,
        diff.cells.len(),
        diff.tolerance_pct,
        if diff.strict_metrics {
            ", strict metrics"
        } else {
            ""
        }
    );
    for c in &diff.cells {
        let _ = write!(out, "{:<40}", c.cell_id);
        for (name, old_v, new_v) in &c.metrics {
            let delta = new_v - old_v;
            if delta == 0.0 {
                let _ = write!(out, "  {name}={old_v:.4}");
            } else {
                let _ = write!(out, "  {name}={old_v:.4}->{new_v:.4} ({delta:+.4})");
            }
        }
        if diff.strict_metrics && c.metric_drift {
            let _ = write!(out, "  [METRIC DRIFT]");
        }
        if c.old_flows_per_s > 0.0 || c.new_flows_per_s > 0.0 {
            let _ = write!(
                out,
                "  [{:.0} -> {:.0} flows/s, {:+.1}%{}]",
                c.old_flows_per_s,
                c.new_flows_per_s,
                c.speed_change_pct,
                if c.regressed { " REGRESSED" } else { "" }
            );
        }
        out.push('\n');
    }
    for id in &diff.missing {
        let _ = writeln!(out, "{id:<40}  MISSING in new report (regression)");
    }
    for id in &diff.added {
        let _ = writeln!(out, "{id:<40}  ADDED in new report (new coverage)");
    }
    let _ = writeln!(
        out,
        "{}: {} regression(s), {} cell(s) missing, {} cell(s) added",
        if diff.passes() { "PASS" } else { "FAIL" },
        diff.regressions(),
        diff.missing.len(),
        diff.added.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_sim::report::BENCH_SCHEMA_VERSION;

    fn report(cells: Vec<BenchCell>) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "fig6".into(),
            description: "d".into(),
            smoke: true,
            jobs: 1,
            total_wall_s: 1.0,
            cells,
        }
    }

    fn cell(id: &str, metric: f64, wall_s: f64, flows: u64) -> BenchCell {
        BenchCell::new(
            id,
            vec![],
            vec![("avg_response".into(), metric)],
            wall_s,
            flows,
            "engine",
        )
    }

    #[test]
    fn self_diff_passes() {
        let r = report(vec![
            cell("fig6/a", 2.0, 0.5, 100),
            cell("fig6/b", 3.0, 0.1, 0),
        ]);
        let diff = diff_reports(&r, &r, DEFAULT_TOLERANCE_PCT);
        assert!(diff.passes());
        assert_eq!(diff.cells.len(), 2);
        assert_eq!(diff.cells[0].speed_change_pct, 0.0);
        assert!(render_diff(&diff).contains("PASS: 0 regression(s)"));
    }

    #[test]
    fn slowdown_beyond_tolerance_regresses() {
        let old = report(vec![cell("fig6/a", 2.0, 0.5, 1000)]);
        let new = report(vec![cell("fig6/a", 2.0, 1.0, 1000)]); // 2x slower
        let diff = diff_reports(&old, &new, 30.0);
        assert!(!diff.passes());
        assert!(diff.cells[0].regressed);
        assert!(render_diff(&diff).contains("REGRESSED"));
        // A 2x slowdown within a 60% tolerance passes.
        assert!(diff_reports(&old, &new, 60.0).passes());
    }

    #[test]
    fn missing_cell_is_a_regression_added_is_not() {
        let old = report(vec![
            cell("fig6/a", 2.0, 0.5, 10),
            cell("fig6/b", 1.0, 0.5, 10),
        ]);
        let new = report(vec![
            cell("fig6/a", 2.0, 0.5, 10),
            cell("fig6/c", 1.0, 0.5, 10),
        ]);
        let diff = diff_reports(&old, &new, 30.0);
        assert_eq!(diff.missing, vec!["fig6/b".to_string()]);
        assert_eq!(diff.added, vec!["fig6/c".to_string()]);
        assert_eq!(diff.regressions(), 1);
        // Added cells are reported explicitly, not silently dropped:
        // named in a body line AND counted in the verdict.
        let rendered = render_diff(&diff);
        assert!(
            rendered.contains("fig6/c") && rendered.contains("ADDED in new report"),
            "{rendered}"
        );
        assert!(rendered.contains("1 cell(s) added"), "{rendered}");
        assert!(rendered.contains("1 cell(s) missing"), "{rendered}");
    }

    #[test]
    fn added_cells_never_gate_and_self_diff_reports_zero_added() {
        let old = report(vec![cell("fig6/a", 2.0, 0.5, 10)]);
        let new = report(vec![
            cell("fig6/a", 2.0, 0.5, 10),
            cell("fig6/new1", 1.0, 0.5, 10),
            cell("fig6/new2", 1.0, 0.5, 0),
        ]);
        let diff = diff_reports(&old, &new, 30.0);
        assert!(diff.passes(), "new coverage is not a regression");
        assert_eq!(diff.added.len(), 2);
        let rendered = render_diff(&diff);
        assert!(rendered.contains("2 cell(s) added"), "{rendered}");
        let self_diff = diff_reports(&new, &new, 30.0);
        assert!(render_diff(&self_diff).contains("0 cell(s) added"));
    }

    #[test]
    fn metric_changes_report_but_do_not_gate() {
        let old = report(vec![cell("fig6/a", 2.0, 0.5, 10)]);
        let new = report(vec![cell("fig6/a", 2.5, 0.5, 10)]);
        let diff = diff_reports(&old, &new, 30.0);
        assert!(diff.passes());
        assert!(diff.cells[0].metric_drift, "drift is still recorded");
        let rendered = render_diff(&diff);
        assert!(rendered.contains("2.0000->2.5000"), "{rendered}");
    }

    #[test]
    fn strict_metrics_gates_on_value_drift_but_never_on_timing() {
        let old = report(vec![cell("fig6/a", 2.0, 0.5, 1000)]);
        // Same metrics, wildly different timing: strict mode at full
        // tolerance passes (the sharded-vs-single-process setting).
        let new = report(vec![cell("fig6/a", 2.0, 50.0, 1000)]);
        let diff = diff_reports_opts(&old, &new, 100.0, true);
        assert!(diff.passes(), "timing noise must not gate in strict mode");

        // A drifted value gates, whatever the throughput did.
        let drifted = report(vec![cell("fig6/a", 2.0001, 0.5, 1000)]);
        let diff = diff_reports_opts(&old, &drifted, 100.0, true);
        assert!(!diff.passes());
        assert!(diff.cells[0].metric_drift && diff.cells[0].regressed);
        let rendered = render_diff(&diff);
        assert!(rendered.contains("METRIC DRIFT"), "{rendered}");
        assert!(rendered.contains("strict metrics"), "{rendered}");

        // So does a vanished metric, even with identical shared values.
        let mut fewer = report(vec![cell("fig6/a", 2.0, 0.5, 1000)]);
        fewer.cells[0].metrics.clear();
        let diff = diff_reports_opts(&old, &fewer, 100.0, true);
        assert!(!diff.passes(), "metric sets must match in strict mode");

        // Without strict mode the same drift only reports.
        assert!(diff_reports(&old, &drifted, 100.0).passes());
    }

    #[test]
    fn zero_flow_cells_never_gate_on_speed() {
        let old = report(vec![cell("fig6/lp", 2.0, 0.1, 0)]);
        let new = report(vec![cell("fig6/lp", 2.0, 50.0, 0)]);
        assert!(diff_reports(&old, &new, 30.0).passes());
        // Gaining throughput where there was none is not a regression.
        let gained = report(vec![cell("fig6/lp", 2.0, 0.1, 10)]);
        assert!(diff_reports(&old, &gained, 30.0).passes());
    }

    #[test]
    fn throughput_collapse_to_zero_is_a_regression() {
        let old = report(vec![cell("fig6/a", 2.0, 0.5, 1000)]);
        let new = report(vec![cell("fig6/a", 2.0, 0.5, 0)]);
        let diff = diff_reports(&old, &new, 30.0);
        assert!(!diff.passes(), "lost throughput must gate");
        assert!(diff.cells[0].regressed);
        assert_eq!(diff.cells[0].speed_change_pct, -100.0);
    }
}
