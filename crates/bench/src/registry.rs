//! The declarative experiment registry.
//!
//! Every figure, table, and sweep the paper's evaluation section needs is
//! registered here as an [`Experiment`]: an id, a description, and a
//! builder that expands the experiment into self-contained [`CellSpec`]s
//! at the requested [`Scale`]. The orchestrator
//! ([`crate::orchestrator::run_bench`]) flattens the selected experiments
//! into one cell list and executes it on the work-stealing scheduler, so
//! a single heavy cell (an `M = 4m` grid point, an LP solve) no longer
//! serializes a whole run.
//!
//! Cell runners are **pure by construction**: every cell derives its RNG
//! streams from fixed seeds, so registry output is deterministic and the
//! differential tests can compare it against direct library calls.

use crate::experiments;

/// Grid sizing for one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scale {
    /// CI-sized grids (the old bins' `--quick`).
    pub smoke: bool,
    /// Paper-exact grids and trial counts (takes precedence over
    /// `smoke`): the 150x150 heuristic figure grids, 10 trials per cell
    /// across the tables, and the long-horizon saturation sweep. Sized
    /// for multi-hour budgets — pair with the distributed runner's
    /// checkpointed `bench --workers N [--resume]` runs.
    pub paper: bool,
    /// Override trials per cell (the old bins' `--trials N`).
    pub trials: Option<u64>,
    /// Record round-loop telemetry while cells execute (`bench
    /// --progress`). Purely observational: cell metrics are bit-identical
    /// either way, instrumented cells just carry a
    /// [`fss_telemetry::TelemetrySnapshot`] in the artifact.
    pub telemetry: bool,
    /// Worker threads *inside* a cell (`flowsched bench --cores N`):
    /// experiments with internal trial-level parallelism (the saturation
    /// sweep) spread their trials over this many threads. `0` or `1`
    /// runs cells sequentially. Purely a throughput knob — cell metrics
    /// and fingerprints are bit-identical at every value, so artifacts
    /// from different `--cores` settings diff clean.
    pub cores: usize,
}

impl Scale {
    /// Trials for this run: the override, else the smoke or full default.
    pub fn trials_or(&self, smoke_default: u64, full_default: u64) -> u64 {
        self.trials
            .unwrap_or(if self.smoke {
                smoke_default
            } else {
                full_default
            })
            .max(1)
    }

    /// Trials with a distinct default per tier (smoke / full / paper).
    pub fn tiered_trials(&self, smoke: u64, full: u64, paper: u64) -> u64 {
        let default = if self.paper {
            paper
        } else if self.smoke {
            smoke
        } else {
            full
        };
        self.trials.unwrap_or(default).max(1)
    }

    /// Human name of the selected tier.
    pub fn tier_name(&self) -> &'static str {
        if self.paper {
            "paper"
        } else if self.smoke {
            "smoke"
        } else {
            "full"
        }
    }
}

/// What one executed cell measured.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Named objective values, in display order.
    pub metrics: Vec<(String, f64)>,
    /// Work units processed (flows scheduled, instances solved); `0`
    /// when throughput is not meaningful.
    pub flows: u64,
    /// Execution substrate (`engine`, `lp`, `offline`, `exact`, ...).
    pub engine_mode: &'static str,
    /// Round-loop telemetry captured while the cell ran; `None` when the
    /// run was uninstrumented or the substrate has no engine loop.
    pub telemetry: Option<fss_telemetry::TelemetrySnapshot>,
}

/// A cell's runner: a deterministic closure from nothing to metrics.
pub type CellRunner = Box<dyn Fn() -> CellOutcome + Send + Sync>;

/// One schedulable unit of an experiment grid.
pub struct CellSpec {
    /// Unique id, `<experiment>/<coordinates...>`.
    pub id: String,
    /// Grid coordinates as ordered key/value strings.
    pub params: Vec<(String, String)>,
    /// The work itself.
    pub run: CellRunner,
}

impl CellSpec {
    /// Build a cell from its id pieces, parameters, and runner.
    pub fn new(
        id: impl Into<String>,
        params: Vec<(&str, String)>,
        run: impl Fn() -> CellOutcome + Send + Sync + 'static,
    ) -> CellSpec {
        CellSpec {
            id: id.into(),
            params: params
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            run: Box::new(run),
        }
    }
}

/// An experiment's cell expansion: a closure so experiments can be built
/// at runtime from external inputs (a loaded arrival trace, a scenario
/// file) as well as from the static registry.
pub type ExperimentBuilder = Box<dyn Fn(&Scale) -> Vec<CellSpec> + Send + Sync>;

/// A registered experiment: everything the orchestrator needs to expand
/// and execute it.
pub struct Experiment {
    /// Registry id (also the artifact name stem, `BENCH_<id>.json`).
    pub id: &'static str,
    /// One-line description of what the experiment reproduces.
    pub description: &'static str,
    /// Expand into cells at the given scale.
    pub build: ExperimentBuilder,
}

impl Experiment {
    /// Build an experiment from its id, description, and cell builder.
    pub fn new(
        id: &'static str,
        description: &'static str,
        build: impl Fn(&Scale) -> Vec<CellSpec> + Send + Sync + 'static,
    ) -> Experiment {
        Experiment {
            id,
            description,
            build: Box::new(build),
        }
    }
}

/// Every registered experiment, in canonical order.
pub fn registry() -> Vec<Experiment> {
    vec![
        experiments::figures::fig6(),
        experiments::figures::fig7(),
        experiments::saturation::saturation(),
        experiments::tables::table_art(),
        experiments::tables::table_mrt(),
        experiments::tables::table_amrt(),
        experiments::tables::table_gaps(),
        experiments::tables::table_rounding_ablation(),
        experiments::tables::table_window_ablation(),
        experiments::tables::table_coflow(),
        experiments::coflow_replay::coflow_replay(),
        experiments::probe::open_problem_probe(),
    ]
}

/// Select experiments by filter: an exact id match wins; otherwise every
/// experiment whose id contains `filter` as a substring. `None` selects
/// the whole registry.
pub fn select(filter: Option<&str>) -> Vec<Experiment> {
    let all = registry();
    match filter {
        None => all,
        Some(f) => {
            let exact: Vec<Experiment> = registry().into_iter().filter(|e| e.id == f).collect();
            if !exact.is_empty() {
                exact
            } else {
                all.into_iter().filter(|e| e.id.contains(f)).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_nonempty() {
        let all = registry();
        assert!(all.len() >= 11, "all legacy bins must be registered");
        let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment id");
        for e in &all {
            assert!(!e.id.is_empty() && !e.description.is_empty());
        }
    }

    #[test]
    fn every_experiment_expands_to_cells_at_smoke_scale() {
        let scale = Scale {
            smoke: true,
            trials: Some(1),
            ..Scale::default()
        };
        for e in registry() {
            let cells = (e.build)(&scale);
            assert!(!cells.is_empty(), "{} has no cells", e.id);
            let mut ids: Vec<&String> = cells.iter().map(|c| &c.id).collect();
            ids.sort_unstable();
            let n = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), n, "{} has duplicate cell ids", e.id);
            for c in &cells {
                assert!(
                    c.id.starts_with(&format!("{}/", e.id)),
                    "cell id {} must be prefixed with its experiment id",
                    c.id
                );
            }
        }
    }

    #[test]
    fn select_prefers_exact_match_then_substring() {
        assert_eq!(select(None).len(), registry().len());
        let exact = select(Some("fig6"));
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].id, "fig6");
        let sub = select(Some("table"));
        assert!(sub.len() >= 6, "all tables match the substring");
        assert!(select(Some("no-such-experiment")).is_empty());
    }

    #[test]
    fn trials_override_and_defaults() {
        let s = Scale {
            smoke: true,
            trials: None,
            ..Scale::default()
        };
        assert_eq!(s.trials_or(2, 5), 2);
        let s = Scale {
            smoke: false,
            trials: None,
            ..Scale::default()
        };
        assert_eq!(s.trials_or(2, 5), 5);
        let s = Scale {
            smoke: false,
            trials: Some(7),
            ..Scale::default()
        };
        assert_eq!(s.trials_or(2, 5), 7);
    }
}
