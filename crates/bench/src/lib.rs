//! # fss-bench — shared plumbing for the figure/table binaries
//!
//! Every evaluation artifact of the paper has a binary here that
//! regenerates it (see DESIGN.md §4 for the experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig6` | Figure 6 — average response time, heuristics vs LP (1)–(4) |
//! | `fig7` | Figure 7 — maximum response time, heuristics vs LP (19)–(21) |
//! | `table_art` | Theorem 1 validation table |
//! | `table_mrt` | Theorem 3 validation table |
//! | `table_gaps` | Theorem 2 / Lemma 5.2 gap table |
//! | `table_amrt` | Lemma 5.3 validation table |
//! | `table_rounding_ablation` | rounding-engine ablation |
//!
//! Each binary accepts `--quick` (smoke-test sizes) and writes CSV files
//! under `target/experiments/` besides printing the series to stdout.

use std::path::PathBuf;

/// Command-line options shared by the figure/table binaries.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Smoke-test sizes (CI-friendly).
    pub quick: bool,
    /// Run the heuristic grid at the paper's full 150x150 scale.
    pub paper_scale: bool,
    /// Override trial count.
    pub trials: Option<u64>,
}

impl RunOptions {
    /// Parse from `std::env::args`: recognizes `--quick`, `--paper` and
    /// `--trials N`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut trials = None;
        let mut iter = args.iter().peekable();
        while let Some(a) = iter.next() {
            if a == "--trials" {
                trials = iter.peek().and_then(|s| s.parse().ok());
            }
        }
        RunOptions {
            quick: args.iter().any(|a| a == "--quick"),
            paper_scale: args.iter().any(|a| a == "--paper"),
            trials,
        }
    }
}

/// `target/experiments/`, created on demand.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Write a CSV artifact and echo its path.
pub fn write_artifact(name: &str, content: &str) {
    let path = out_dir().join(name);
    std::fs::write(&path, content).expect("write artifact");
    println!("wrote {}", path.display());
}

/// Format a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    let mut s = String::from("|");
    for c in cells {
        s.push_str(&format!(" {c} |"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dir_exists_after_call() {
        let d = out_dir();
        assert!(d.exists());
    }

    #[test]
    fn row_formatting() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
