//! # fss-bench — the experiment registry and benchmark orchestrator
//!
//! Every evaluation artifact of the paper is a registered
//! [`registry::Experiment`]; the orchestrator ([`orchestrator::run_bench`])
//! expands the selected experiments into a flat cell list, executes it on
//! the rayon shim's work-stealing scheduler, streams per-cell results as
//! JSONL, and persists one schema-validated `BENCH_<experiment>.json`
//! artifact per experiment (see [`fss_sim::report`] for the schema).
//!
//! Entry points:
//!
//! * `flowsched bench [--filter ID] [--smoke] [--jobs N] [--out DIR]` —
//!   the CLI front end (see the `flow-switch` crate);
//! * the per-experiment binaries in `src/bin/` (`fig6`, `table_mrt`, ...)
//!   — thin wrappers that run exactly one registry entry, kept for
//!   muscle-memory compatibility with the pre-registry workflow.
//!
//! | experiment | artifact reproduced |
//! |---|---|
//! | `fig6` | Figure 6 — average response time, heuristics vs LP (1)–(4) |
//! | `fig7` | Figure 7 — maximum response time, heuristics vs LP (19)–(21) |
//! | `saturation` | intensity sweep across the stability boundary |
//! | `table_art` | Theorem 1 validation table |
//! | `table_mrt` | Theorem 3 validation table |
//! | `table_amrt` | Lemma 5.3 validation table |
//! | `table_gaps` | Theorem 2 / Lemma 5.2 gap table |
//! | `table_rounding_ablation` | rounding-engine ablation |
//! | `table_window_ablation` | ART window-choice ablation |
//! | `table_coflow` | co-flow extension table |
//! | `open_problem_probe` | paper §6 open-problem probe |

use std::path::PathBuf;

pub mod cells;
pub mod diff;
pub mod experiments;
pub mod orchestrator;
pub mod registry;

pub use cells::{
    assemble_reports, execute_cell, flatten, scale_of, select_experiments, write_reports, FlatCell,
};
pub use diff::{
    diff_artifacts, diff_artifacts_opts, diff_reports, diff_reports_opts, render_diff, CellDelta,
    DiffReport, DEFAULT_TOLERANCE_PCT,
};
pub use orchestrator::{
    flows_per_sec, list_experiments, registry_cell_counts, run_bench, BenchOptions, ProgressLine,
    CELLS_STREAM_NAME,
};
pub use registry::{registry, select, CellOutcome, CellSpec, Experiment, ExperimentBuilder, Scale};

/// Command-line options shared by the per-experiment binaries.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Smoke-test sizes (CI-friendly).
    pub quick: bool,
    /// Run the heuristic grid at the paper's full 150x150 scale.
    pub paper_scale: bool,
    /// Override trial count.
    pub trials: Option<u64>,
}

impl RunOptions {
    /// Parse from `std::env::args`: recognizes `--quick`, `--paper` and
    /// `--trials N`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut trials = None;
        let mut iter = args.iter().peekable();
        while let Some(a) = iter.next() {
            if a == "--trials" {
                trials = iter.peek().and_then(|s| s.parse().ok());
            }
        }
        RunOptions {
            quick: args.iter().any(|a| a == "--quick"),
            paper_scale: args.iter().any(|a| a == "--paper"),
            trials,
        }
    }
}

/// Entry point for the thin per-experiment binaries: run one registry
/// entry at the scale given by `--quick` / `--trials`, print the cell
/// table, and report the artifact paths.
pub fn run_registry_bin(id: &str) {
    let opts = RunOptions::from_args();
    let bench = BenchOptions {
        filter: Some(id.to_string()),
        smoke: opts.quick,
        paper: opts.paper_scale,
        trials: opts.trials,
        ..BenchOptions::default()
    };
    match run_bench(&bench) {
        Ok(reports) => print_reports(&reports, &bench.out_dir),
        Err(e) => {
            eprintln!("bench {id}: {e}");
            std::process::exit(1);
        }
    }
}

/// Print each report's cell table and artifact path (shared by
/// `flowsched bench` and the thin per-experiment binaries).
pub fn print_reports(reports: &[fss_sim::BenchReport], out_dir: &std::path::Path) {
    for r in reports {
        print!("{}", fss_sim::report::bench_table(r));
        println!("wrote {}", out_dir.join(r.artifact_name()).display());
    }
}

/// `target/experiments/`, created on demand.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Write a CSV artifact and echo its path.
pub fn write_artifact(name: &str, content: &str) {
    let path = out_dir().join(name);
    std::fs::write(&path, content).expect("write artifact");
    println!("wrote {}", path.display());
}

/// Format a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    let mut s = String::from("|");
    for c in cells {
        s.push_str(&format!(" {c} |"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dir_exists_after_call() {
        let d = out_dir();
        assert!(d.exists());
    }

    #[test]
    fn row_formatting() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }

    #[test]
    fn list_covers_registry() {
        let listed = list_experiments();
        assert_eq!(listed.len(), registry().len());
        assert!(listed.iter().any(|&(id, _)| id == "fig6"));
    }
}
