//! Thin wrapper over the `table_amrt` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_table_amrt.json`. Equivalent to
//! `flowsched bench --filter table_amrt`.

fn main() {
    fss_bench::run_registry_bin("table_amrt");
}
