//! **Lemma 5.3 validation table**: AMRT's online maximum response time vs
//! the offline ρ*, and its measured port load vs the
//! `2·(c_p + 2·dmax − 1)` budget.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin table_amrt [-- --quick]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_core::gen::{random_instance, GenParams};
use fss_offline::mrt::{solve_mrt, RoundingEngine};
use fss_online::amrt_schedule;
use rand::{rngs::SmallRng, SeedableRng};
use std::fmt::Write as _;

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.trials.unwrap_or(if opts.quick { 2 } else { 5 });
    let configs: Vec<(usize, u64)> = if opts.quick {
        vec![(10, 4)]
    } else {
        vec![(12, 4), (24, 8), (48, 16)]
    };

    let mut csv = String::from(
        "n,release_span,trials,online_rho,offline_rho_star,ratio,max_port_load,load_budget\n",
    );
    println!(
        "{:>4} {:>6} {:>11} {:>12} {:>6} {:>9} {:>11}",
        "n", "span", "online rho", "offline rho*", "ratio", "port load", "load budget"
    );
    for &(n, span) in &configs {
        let mut online_sum = 0u64;
        let mut offline_sum = 0u64;
        let mut load_max = 0u64;
        for k in 0..trials {
            let mut rng = SmallRng::seed_from_u64(0xa3a7 + (n as u64 * 17) + k);
            let p = GenParams::unit(4, n, span);
            let inst = random_instance(&mut rng, &p);
            let online = amrt_schedule(&inst);
            let offline = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
            online_sum += online.metrics.max_response;
            offline_sum += offline.rho_star;
            load_max = load_max.max(online.max_port_load);
        }
        let t = trials as f64;
        let online = online_sum as f64 / t;
        let offline = offline_sum as f64 / t;
        let ratio = online / offline.max(1.0);
        // Unit capacities and demands: 2 * (1 + 2*1 - 1) = 4.
        let budget = 4u64;
        println!(
            "{n:>4} {span:>6} {online:>11.1} {offline:>12.1} {ratio:>6.2} {load_max:>9} {budget:>11}"
        );
        let _ = writeln!(
            csv,
            "{n},{span},{trials},{online:.1},{offline:.1},{ratio:.2},{load_max},{budget}"
        );
    }
    write_artifact("table_amrt.csv", &csv);
    println!("\nLemma 5.3 expectations: port load <= budget; online within a small");
    println!("constant of offline rho* (the lemma's bound is 2x against the batched guess).");
}
