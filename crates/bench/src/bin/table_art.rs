//! **Theorem 1 validation table**: the FS-ART pipeline on random
//! unit-demand instances — pseudo-schedule cost vs the LP optimum,
//! windowed overload vs the `O(c_p log n)` bound, and the final
//! average-response ratio against the LP (1)–(4) lower bound for
//! `c ∈ {1, 2, 4}`.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin table_art [-- --quick]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_core::gen::{random_instance, GenParams};
use fss_offline::art::{art_lp_lower_bound, solve_art};
use rand::{rngs::SmallRng, SeedableRng};
use std::fmt::Write as _;

fn main() {
    let opts = RunOptions::from_args();
    let sizes: Vec<usize> = if opts.quick {
        vec![12, 20]
    } else {
        vec![20, 40, 80, 120]
    };
    let trials = opts.trials.unwrap_or(if opts.quick { 1 } else { 3 });

    let mut csv = String::from(
        "n,m,c,trials,lp_bound,pseudo_cost,overload,log_bound,total_response,ratio,window\n",
    );
    println!(
        "{:>5} {:>3} {:>2} {:>10} {:>11} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "n", "m", "c", "LP(1)-(4)", "pseudo", "overload", "10clog n", "total", "ratio", "h"
    );
    for &n in &sizes {
        let m = (n / 5).clamp(3, 12);
        for &c in &[1u32, 2, 4] {
            let mut lp_sum = 0.0;
            let mut pseudo_sum = 0.0;
            let mut overload_max = 0i64;
            let mut total_sum = 0u64;
            let mut window_sum = 0u64;
            for k in 0..trials {
                let mut rng = SmallRng::seed_from_u64((0xa47 + (n as u64)) << 8 | k);
                let p = GenParams::unit(m, n, (n / 4) as u64);
                let inst = random_instance(&mut rng, &p);
                let lp = art_lp_lower_bound(&inst, None).expect("LP bound");
                let res = solve_art(&inst, c);
                lp_sum += lp;
                pseudo_sum += res.pseudo.pseudo.total_response(&inst) as f64;
                overload_max = overload_max.max(res.pseudo.pseudo.max_window_overload(&inst));
                total_sum += res.metrics.total_response;
                window_sum += res.window;
            }
            let t = trials as f64;
            let lp = lp_sum / t;
            let pseudo = pseudo_sum / t;
            let total = total_sum as f64 / t;
            let ratio = total / lp.max(1.0);
            let log_bound = 10.0 * ((n as f64).log2().ceil() + 1.0);
            let h = window_sum as f64 / t;
            println!(
                "{n:>5} {m:>3} {c:>2} {lp:>10.1} {pseudo:>11.1} {overload_max:>9} {log_bound:>9.0} {total:>9.1} {ratio:>7.2} {h:>6.1}"
            );
            let _ = writeln!(
                csv,
                "{n},{m},{c},{trials},{lp:.2},{pseudo:.2},{overload_max},{log_bound:.0},{total:.1},{ratio:.3},{h:.1}"
            );
        }
    }
    write_artifact("table_art.csv", &csv);
    println!("\nTheorem 1 expectations: pseudo <= LP + n/2; overload <= O(log n);");
    println!("ratio shrinks as c grows (1 + O(log n)/c).");
}
