//! Thin wrapper over the `table_art` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_table_art.json`. Equivalent to
//! `flowsched bench --filter table_art`.

fn main() {
    fss_bench::run_registry_bin("table_art");
}
