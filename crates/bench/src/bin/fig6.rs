//! Thin wrapper over the `fig6` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_fig6.json`. Equivalent to
//! `flowsched bench --filter fig6`.

fn main() {
    fss_bench::run_registry_bin("fig6");
}
