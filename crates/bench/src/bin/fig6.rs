//! Regenerates **Figure 6**: average response time of the online
//! heuristics vs the LP (1)–(4) lower bound, across the `(M, T)` grid.
//!
//! Modes:
//! * default — heuristics on a 6x6 switch over the paper's T grid at the
//!   paper's congestion ratios `M/m`; LP bound series on the same switch
//!   for the small-T cells (windowed LP, see DESIGN.md §3.4);
//! * `--paper` — heuristics at the full 150x150 scale (LP series kept at
//!   the scaled switch: the paper itself needed >3 h of Gurobi per cell);
//! * `--quick` — smoke-test sizes.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin fig6 [-- --quick|--paper|--trials N]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_sim::report::{bounds_to_csv, cells_to_csv, figure_table};
use fss_sim::{lp_bounds_grid_parts, run_grid, ExperimentConfig, LpBoundParts};

fn main() {
    let opts = RunOptions::from_args();
    let (m, heur_t, lp_t, trials, lp_trials) = if opts.quick {
        (8usize, vec![6u64, 8], vec![6u64], 2u64, 1u64)
    } else if opts.paper_scale {
        (
            150,
            vec![10, 12, 14, 16, 18, 20, 40, 60, 80, 100],
            vec![],
            10,
            0,
        )
    } else {
        (
            6,
            vec![10, 12, 14, 16, 18, 20, 40, 60, 80, 100],
            vec![10, 12],
            5,
            2,
        )
    };
    let trials = opts.trials.unwrap_or(trials);

    // Heuristic series.
    let mut cfg = ExperimentConfig::scaled(m, heur_t, trials);
    println!(
        "Figure 6: switch {m}x{m}, M = {:?}, trials = {trials}",
        cfg.m_values
    );
    let cells = run_grid(&cfg);
    write_artifact("fig6_heuristics.csv", &cells_to_csv(&cells));

    // LP bound series (windowed ART LP). The window must comfortably
    // exceed the worst response an optimal schedule needs: with per-port
    // intensity lambda = M/m, the backlog after T arrival rounds is about
    // (lambda - 1) * T, so lambda * T_max + slack is a safe per-M window;
    // `lp_bounds_grid` still auto-grows it on infeasibility.
    let bounds = if lp_trials > 0 && !lp_t.is_empty() {
        let t_max = lp_t.iter().copied().max().unwrap_or(10);
        let mut b = Vec::new();
        for &ma in &cfg.m_values {
            let lambda = ma / m as f64;
            let window = ((lambda * t_max as f64).ceil() as u64).max(8) + 4;
            let lp_cfg = ExperimentConfig {
                m_values: vec![ma],
                t_values: lp_t.clone(),
                trials: lp_trials,
                ..cfg.clone()
            };
            println!("LP bound series: M = {ma}, T = {lp_t:?}, window = {window}");
            b.extend(lp_bounds_grid_parts(
                &lp_cfg,
                Some(window),
                LpBoundParts::AVG,
            ));
        }
        write_artifact("fig6_lp_bounds.csv", &bounds_to_csv(&b));
        b
    } else {
        Vec::new()
    };

    // One panel per M, as in the paper's figure.
    cfg.m_values.sort_by(f64::total_cmp);
    for &ma in &cfg.m_values {
        println!("{}", figure_table(&cells, &bounds, ma, false));
    }

    // The paper's qualitative claim: MaxWeight best, MinRTime worst on
    // average response; report the aggregate ordering.
    let agg = |name: &str| -> f64 {
        cells
            .iter()
            .filter(|c| c.policy.name() == name)
            .map(|c| c.avg_response)
            .sum()
    };
    println!(
        "aggregate avg response — MaxCard: {:.1}, MinRTime: {:.1}, MaxWeight: {:.1}",
        agg("MaxCard"),
        agg("MinRTime"),
        agg("MaxWeight")
    );
}
