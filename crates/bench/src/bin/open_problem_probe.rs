//! **Open-problem probe** (paper §6): given a sequence of unit-flow
//! request graphs `G_1, ..., G_T` such that for every interval `I` and
//! port `v`, the total degree of `v` over `I` is at most `|I| + 1` —
//! can every request be served with *constant* response time and *no*
//! capacity augmentation?
//!
//! This binary samples random request sequences satisfying the degree
//! condition (the paper's "absolutely minimal augmentation of plus 1"
//! regime), computes the exact optimal maximum response time without
//! augmentation on small instances, and reports the observed worst case —
//! empirical evidence toward the conjecture.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin open_problem_probe [-- --quick]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_core::prelude::*;
use fss_offline::exact::min_max_response;
use fss_offline::mrt::min_feasible_rho;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::fmt::Write as _;

/// Generate `rounds` of unit-flow arrivals on an `m x m` unit switch such
/// that every port's arrival degree over any window `I` is `<= |I| + 1`.
///
/// Invariant maintained per port: with `g_v(t) = arrivals_v(0..=t) - t`,
/// the condition is `g_v(j) - min_{i<j} g_v(i) <= 1` for all `j`. We track
/// the running minimum and admit an edge only if both endpoints stay
/// within budget.
fn degree_bounded_sequence(rng: &mut SmallRng, m: usize, rounds: u64) -> Instance {
    let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
    // Per-port cumulative excess g and its running minimum, updated per
    // round: g_v(t) = g_v(t-1) + deg_v(t) - 1.
    let mut g_in = vec![0i64; m];
    let mut gmin_in = vec![0i64; m];
    let mut g_out = vec![0i64; m];
    let mut gmin_out = vec![0i64; m];
    for t in 0..rounds {
        let mut deg_in = vec![0i64; m];
        let mut deg_out = vec![0i64; m];
        // Try a few random edges per round (expected load near capacity).
        let attempts = m + rng.gen_range(0..=m / 2 + 1);
        for _ in 0..attempts {
            let s = rng.gen_range(0..m);
            let d = rng.gen_range(0..m);
            // Admitting the edge must keep g - gmin <= 1 for both ports at
            // the end of this round.
            let gi = g_in[s] + deg_in[s] + 1 - 1;
            let go = g_out[d] + deg_out[d] + 1 - 1;
            if gi - gmin_in[s] <= 1 && go - gmin_out[d] <= 1 {
                deg_in[s] += 1;
                deg_out[d] += 1;
                b.unit_flow(s as u32, d as u32, t);
            }
        }
        for v in 0..m {
            g_in[v] += deg_in[v] - 1;
            gmin_in[v] = gmin_in[v].min(g_in[v]);
            g_out[v] += deg_out[v] - 1;
            gmin_out[v] = gmin_out[v].min(g_out[v]);
        }
    }
    b.build().expect("generator respects invariants")
}

/// Verify the interval-degree condition directly (test oracle).
fn check_degree_condition(inst: &Instance, m: usize, rounds: u64) -> bool {
    let arr = |v: u32, input: bool, t: u64| -> i64 {
        inst.flows
            .iter()
            .filter(|f| f.release == t && if input { f.src == v } else { f.dst == v })
            .count() as i64
    };
    for v in 0..m as u32 {
        for input in [true, false] {
            for i in 0..rounds {
                let mut sum = 0i64;
                for j in i..rounds {
                    sum += arr(v, input, j);
                    if sum > (j - i + 1) as i64 + 1 {
                        return false;
                    }
                }
            }
        }
    }
    true
}

fn main() {
    let opts = RunOptions::from_args();
    let (trials, m, rounds) = if opts.quick {
        (5u64, 3usize, 4u64)
    } else {
        (60, 3, 5)
    };

    let mut worst_exact = 0u64;
    let mut worst_lp = 0u64;
    let mut hist = std::collections::BTreeMap::<u64, u64>::new();
    let mut csv = String::from("trial,n,lp_rho,exact_rho\n");
    let mut done = 0u64;
    let mut seed = 0u64;
    while done < trials {
        seed += 1;
        let mut rng = SmallRng::seed_from_u64(0x09e4 + seed);
        let inst = degree_bounded_sequence(&mut rng, m, rounds);
        if inst.n() == 0 || inst.n() > 14 {
            continue; // keep the exact solver honest
        }
        assert!(
            check_degree_condition(&inst, m, rounds),
            "generator invariant broken"
        );
        let lp = min_feasible_rho(&inst, None).expect("LP search");
        let (exact, _) = min_max_response(&inst);
        worst_exact = worst_exact.max(exact);
        worst_lp = worst_lp.max(lp);
        *hist.entry(exact).or_insert(0) += 1;
        let _ = writeln!(csv, "{done},{},{lp},{exact}", inst.n());
        done += 1;
    }
    println!("open-problem probe: {trials} degree-bounded sequences on a {m}x{m} switch");
    println!("  worst LP rho*          : {worst_lp}");
    println!("  worst exact optimal rho: {worst_exact} (no augmentation)");
    println!("  exact-rho histogram    : {hist:?}");
    println!();
    println!("Conjecture-relevant reading: if the worst exact rho stays a small");
    println!("constant as instances grow, the paper's question (§6) leans positive");
    println!("on random inputs; adversarial sequences may still behave worse.");
    write_artifact("open_problem_probe.csv", &csv);
}
