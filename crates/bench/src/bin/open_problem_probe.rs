//! Thin wrapper over the `open_problem_probe` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_open_problem_probe.json`. Equivalent to
//! `flowsched bench --filter open_problem_probe`.

fn main() {
    fss_bench::run_registry_bin("open_problem_probe");
}
