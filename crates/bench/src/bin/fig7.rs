//! Regenerates **Figure 7**: maximum response time of the online
//! heuristics vs the binary-searched LP (19)–(21) lower bound.
//!
//! Same modes as `fig6`. The paper's observations to reproduce: MinRTime
//! consistently best (close to the LP bound), MaxWeight worst, everything
//! within a ~2.5x factor, gap growing with `M`.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin fig7 [-- --quick|--paper|--trials N]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_sim::report::{bounds_to_csv, cells_to_csv, figure_table};
use fss_sim::{lp_bounds_grid_parts, run_grid, ExperimentConfig, LpBoundParts};

fn main() {
    let opts = RunOptions::from_args();
    let (m, heur_t, lp_t, trials, lp_trials) = if opts.quick {
        (8usize, vec![6u64, 8], vec![6u64], 2u64, 1u64)
    } else if opts.paper_scale {
        (
            150,
            vec![10, 12, 14, 16, 18, 20, 40, 60, 80, 100],
            vec![],
            10,
            0,
        )
    } else {
        (
            6,
            vec![10, 12, 14, 16, 18, 20, 40, 60, 80, 100],
            vec![10, 12],
            5,
            2,
        )
    };
    let trials = opts.trials.unwrap_or(trials);

    let mut cfg = ExperimentConfig::scaled(m, heur_t, trials);
    println!(
        "Figure 7: switch {m}x{m}, M = {:?}, trials = {trials}",
        cfg.m_values
    );
    let cells = run_grid(&cfg);
    write_artifact("fig7_heuristics.csv", &cells_to_csv(&cells));

    let bounds = if lp_trials > 0 && !lp_t.is_empty() {
        let lp_cfg = ExperimentConfig {
            t_values: lp_t,
            trials: lp_trials,
            ..cfg.clone()
        };
        println!("LP bound series: T = {:?}", lp_cfg.t_values);
        // Only the MRT bound matters here (the ART half is skipped).
        let b = lp_bounds_grid_parts(&lp_cfg, None, LpBoundParts::MAX);
        write_artifact("fig7_lp_bounds.csv", &bounds_to_csv(&b));
        b
    } else {
        Vec::new()
    };

    cfg.m_values.sort_by(f64::total_cmp);
    for &ma in &cfg.m_values {
        println!("{}", figure_table(&cells, &bounds, ma, true));
    }

    let agg = |name: &str| -> f64 {
        cells
            .iter()
            .filter(|c| c.policy.name() == name)
            .map(|c| c.max_response)
            .sum()
    };
    println!(
        "aggregate max response — MaxCard: {:.1}, MinRTime: {:.1}, MaxWeight: {:.1}",
        agg("MaxCard"),
        agg("MinRTime"),
        agg("MaxWeight")
    );
}
