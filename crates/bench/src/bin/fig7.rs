//! Thin wrapper over the `fig7` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_fig7.json`. Equivalent to
//! `flowsched bench --filter fig7`.

fn main() {
    fss_bench::run_registry_bin("fig7");
}
