//! **Saturation sweep** (extension; paper §6's "beyond worst-case"
//! direction): mean and max response of each heuristic as per-port
//! arrival intensity `λ = M/m` crosses the stability boundary at 1.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin saturation [-- --quick]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_sim::{saturation_sweep, stable_intensity, PolicyKind};
use std::fmt::Write as _;

fn main() {
    let opts = RunOptions::from_args();
    let (m, rounds, trials) = if opts.quick {
        (6usize, 10u64, 2u64)
    } else {
        (20, 40, 4)
    };
    let trials = opts.trials.unwrap_or(trials);
    let intensities = [0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5];

    let mut csv = String::from("policy,intensity,mean_response,max_response\n");
    println!("saturation sweep: {m}x{m} switch, {rounds} arrival rounds, {trials} trials");
    println!(
        "{:>12} {:>9} {:>13} {:>12}",
        "policy", "lambda", "mean response", "max response"
    );
    for policy in [
        PolicyKind::MaxCard,
        PolicyKind::MinRTime,
        PolicyKind::MaxWeight,
        PolicyKind::FifoGreedy,
    ] {
        let pts = saturation_sweep(policy, m, rounds, &intensities, trials, 0x5a7);
        for p in &pts {
            println!(
                "{:>12} {:>9.2} {:>13.2} {:>12.1}",
                policy.name(),
                p.intensity,
                p.mean_response,
                p.max_response
            );
            let _ = writeln!(
                csv,
                "{},{},{:.3},{:.3}",
                policy.name(),
                p.intensity,
                p.mean_response,
                p.max_response
            );
        }
        let knee = stable_intensity(policy, m, rounds, 4.0, trials.min(2), 0x5a8);
        println!(
            "{:>12} stability knee (mean <= 4): lambda ~ {knee:.2}\n",
            policy.name()
        );
    }
    write_artifact("saturation.csv", &csv);
}
