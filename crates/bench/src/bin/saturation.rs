//! Thin wrapper over the `saturation` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_saturation.json`. Equivalent to
//! `flowsched bench --filter saturation`.

fn main() {
    fss_bench::run_registry_bin("saturation");
}
