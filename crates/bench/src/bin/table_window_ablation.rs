//! **ART window-choice ablation**: Theorem 1's realization chops time into
//! windows of `h` rounds; the adaptive search picks the smallest feasible
//! `h`. This table measures how total response degrades as `h` grows past
//! the minimum (each flow is delayed by up to `2h`), quantifying the
//! design choice DESIGN.md §3.1 calls out.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin table_window_ablation [-- --quick]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_core::gen::{random_instance, GenParams};
use fss_offline::art::{iterative_rounding, realize_schedule, realize_schedule_with_window};
use rand::{rngs::SmallRng, SeedableRng};
use std::fmt::Write as _;

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.trials.unwrap_or(if opts.quick { 2 } else { 5 });
    let ns: Vec<usize> = if opts.quick {
        vec![16]
    } else {
        vec![24, 48, 96]
    };
    let c = 2u32;

    let mut csv = String::from("n,c,trials,h,mean_total_response,h_is_adaptive\n");
    println!(
        "{:>4} {:>3} {:>4} {:>16} {:>9}",
        "n", "c", "h", "mean total resp", "adaptive"
    );
    for &n in &ns {
        // Shared pseudo-schedules per trial; sweep h on top.
        let mut pseudos = Vec::new();
        let mut insts = Vec::new();
        for k in 0..trials {
            let mut rng = SmallRng::seed_from_u64(0x11d0 + (n as u64) * 37 + k);
            let inst = random_instance(
                &mut rng,
                &GenParams::unit((n / 6).clamp(3, 10), n, (n / 4) as u64),
            );
            pseudos.push(iterative_rounding(&inst).pseudo);
            insts.push(inst);
        }
        let h_star: u64 = (0..trials as usize)
            .map(|k| realize_schedule(&insts[k], &pseudos[k], c).window)
            .max()
            .unwrap_or(1);
        for h in [h_star, h_star * 2, h_star * 4, h_star * 8] {
            let mut total = 0u64;
            let mut solved = 0u64;
            for k in 0..trials as usize {
                if let Some(r) = realize_schedule_with_window(&insts[k], &pseudos[k], c, h) {
                    total += fss_core::metrics::evaluate(&insts[k], &r.schedule).total_response;
                    solved += 1;
                }
            }
            let mean = total as f64 / solved.max(1) as f64;
            let adaptive = if h == h_star { "yes" } else { "" };
            println!("{n:>4} {c:>3} {h:>4} {mean:>16.1} {adaptive:>9}");
            let _ = writeln!(csv, "{n},{c},{trials},{h},{mean:.1},{}", h == h_star);
        }
    }
    write_artifact("table_window_ablation.csv", &csv);
    println!("\nExpectation: total response grows roughly linearly in h (each flow");
    println!("delayed up to 2h), so the adaptive minimal h is the right default.");
}
