//! Thin wrapper over the `table_window_ablation` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_table_window_ablation.json`. Equivalent to
//! `flowsched bench --filter table_window_ablation`.

fn main() {
    fss_bench::run_registry_bin("table_window_ablation");
}
