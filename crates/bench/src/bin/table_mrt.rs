//! **Theorem 3 validation table**: the FS-MRT pipeline on random
//! mixed-demand instances — measured port augmentation vs the paper's
//! `2·dmax − 1` budget, LP ρ* vs the greedy upper bound, across
//! `dmax ∈ {1, 2, 3, 5}`.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin table_mrt [-- --quick]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_core::gen::{random_instance, GenParams};
use fss_core::prelude::*;
use fss_offline::greedy_schedule;
use fss_offline::mrt::{solve_mrt, RoundingEngine};
use rand::{rngs::SmallRng, SeedableRng};
use std::fmt::Write as _;

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.trials.unwrap_or(if opts.quick { 2 } else { 5 });
    let ns: Vec<usize> = if opts.quick {
        vec![10]
    } else {
        vec![15, 30, 60]
    };

    let mut csv =
        String::from("n,dmax,trials,rho_star,greedy_rho,max_augmentation,budget,within_budget\n");
    println!(
        "{:>4} {:>5} {:>9} {:>11} {:>8} {:>8} {:>7}",
        "n", "dmax", "rho*", "greedy rho", "max aug", "budget", "ok"
    );
    for &n in &ns {
        for &dmax in &[1u32, 2, 3, 5] {
            let mut rho_sum = 0u64;
            let mut greedy_sum = 0u64;
            let mut aug_max = 0u32;
            let mut all_within = true;
            for k in 0..trials {
                let mut rng = SmallRng::seed_from_u64(0x3a7 + (n as u64 * 131) + k);
                let p = GenParams {
                    m: 4,
                    m_out: 4,
                    cap: 2 * dmax,
                    n,
                    max_demand: dmax,
                    max_release: (n / 3) as u64,
                };
                let inst = random_instance(&mut rng, &p);
                let d_actual = inst.dmax();
                let r =
                    solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).expect("solver");
                let g = metrics::evaluate(&inst, &greedy_schedule(&inst)).max_response;
                rho_sum += r.rho_star;
                greedy_sum += g;
                aug_max = aug_max.max(r.augmentation);
                if r.augmentation > 2 * d_actual - 1 {
                    all_within = false;
                }
                validate::check(&inst, &r.schedule, &inst.switch.augmented(r.augmentation))
                    .expect("schedule feasible on augmented switch");
            }
            let budget = 2 * dmax - 1;
            let t = trials as f64;
            println!(
                "{n:>4} {dmax:>5} {:>9.1} {:>11.1} {aug_max:>8} {budget:>8} {:>7}",
                rho_sum as f64 / t,
                greedy_sum as f64 / t,
                if all_within { "yes" } else { "NO" }
            );
            let _ = writeln!(
                csv,
                "{n},{dmax},{trials},{:.1},{:.1},{aug_max},{budget},{all_within}",
                rho_sum as f64 / t,
                greedy_sum as f64 / t
            );
        }
    }
    write_artifact("table_mrt.csv", &csv);
    println!("\nTheorem 3 expectation: max augmentation <= 2*dmax - 1 on every row.");
}
