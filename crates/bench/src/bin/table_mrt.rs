//! Thin wrapper over the `table_mrt` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_table_mrt.json`. Equivalent to
//! `flowsched bench --filter table_mrt`.

fn main() {
    fss_bench::run_registry_bin("table_mrt");
}
