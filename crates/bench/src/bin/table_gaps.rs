//! Thin wrapper over the `table_gaps` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_table_gaps.json`. Equivalent to
//! `flowsched bench --filter table_gaps`.

fn main() {
    fss_bench::run_registry_bin("table_gaps");
}
