//! **Theorem 2 / Lemma 5.2 gap table**: exact values of the hardness and
//! lower-bound gadgets.
//!
//! * the satisfiable RTT reduction schedules at ρ = 3 exactly;
//! * the unsatisfiable RTT reduction is LP-infeasible at ρ = 3 (any
//!   algorithm without augmentation needs ρ >= 4 — the 4/3 gap);
//! * the Figure 4(b) instance: offline optimum 2, online heuristics at
//!   2 or 3 (Lemma 5.2's forced value under adversarial tie-breaks).
//!
//! ```sh
//! cargo run -p fss-bench --release --bin table_gaps
//! ```

use fss_bench::write_artifact;
use fss_core::prelude::*;
use fss_offline::exact::min_max_response;
use fss_offline::hardness::{
    figure_4b, rtt_reduction, small_satisfiable_rtt, small_unsatisfiable_rtt,
};
use fss_offline::mrt::{lp_feasible, solve_mrt, RoundingEngine};
use fss_online::{run_policy, MaxCard, MaxWeight, MinRTime};
use std::fmt::Write as _;

fn main() {
    let mut csv = String::from("gadget,quantity,value\n");

    // Satisfiable RTT.
    let sat = rtt_reduction(&small_satisfiable_rtt());
    let (opt, _) = min_max_response(&sat);
    println!(
        "satisfiable RTT gadget ({} flows): exact optimal rho = {opt}",
        sat.n()
    );
    let _ = writeln!(csv, "rtt_satisfiable,exact_opt_rho,{opt}");
    let solved = solve_mrt(&sat, None, RoundingEngine::IterativeRelaxation).unwrap();
    println!(
        "  Theorem 3 pipeline: rho* = {}, augmentation +{}",
        solved.rho_star, solved.augmentation
    );
    let _ = writeln!(csv, "rtt_satisfiable,pipeline_rho_star,{}", solved.rho_star);
    let _ = writeln!(
        csv,
        "rtt_satisfiable,pipeline_augmentation,{}",
        solved.augmentation
    );

    // Unsatisfiable RTT.
    let unsat = rtt_reduction(&small_unsatisfiable_rtt());
    let at3 = lp_feasible(&unsat, 3).unwrap();
    let at4 = lp_feasible(&unsat, 4).unwrap();
    println!(
        "unsatisfiable RTT gadget ({} flows): LP feasible at rho=3: {at3}, at rho=4: {at4}",
        unsat.n()
    );
    println!("  => no algorithm achieves rho < 4 here; 4/3 gap certified");
    let _ = writeln!(csv, "rtt_unsatisfiable,lp_feasible_rho3,{at3}");
    let _ = writeln!(csv, "rtt_unsatisfiable,lp_feasible_rho4,{at4}");

    // Figure 4(b).
    let f4b = figure_4b();
    let (opt_4b, _) = min_max_response(&f4b);
    println!("figure 4(b) gadget: offline optimal rho = {opt_4b}");
    let _ = writeln!(csv, "figure_4b,offline_opt_rho,{opt_4b}");
    for (name, sched) in [
        ("MaxCard", run_policy(&f4b, &mut MaxCard)),
        ("MinRTime", run_policy(&f4b, &mut MinRTime)),
        ("MaxWeight", run_policy(&f4b, &mut MaxWeight)),
    ] {
        let m = metrics::evaluate(&f4b, &sched);
        println!("  {name:<10} online rho = {}", m.max_response);
        let _ = writeln!(csv, "figure_4b,online_{name},{}", m.max_response);
    }
    println!("  (Lemma 5.2: an adversarial tie-break forces every online algorithm to 3)");

    write_artifact("table_gaps.csv", &csv);
}
