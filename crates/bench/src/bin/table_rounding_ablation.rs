//! Thin wrapper over the `table_rounding_ablation` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_table_rounding_ablation.json`. Equivalent to
//! `flowsched bench --filter table_rounding_ablation`.

fn main() {
    fss_bench::run_registry_bin("table_rounding_ablation");
}
