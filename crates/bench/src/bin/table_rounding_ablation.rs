//! **Rounding-engine ablation**: IterativeRelaxation (paper-bound chaser)
//! vs BeckFiala (guaranteed-but-looser) on the same time-constrained
//! instances — achieved augmentation and wall-clock time.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin table_rounding_ablation [-- --quick]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_core::gen::{random_instance, GenParams};
use fss_offline::mrt::{round_time_constrained, RoundingEngine, TimeConstrained};
use rand::{rngs::SmallRng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.trials.unwrap_or(if opts.quick { 2 } else { 5 });
    let configs: Vec<(usize, u32)> = if opts.quick {
        vec![(10, 1)]
    } else {
        vec![(15, 1), (30, 1), (30, 3), (60, 3)]
    };

    let mut csv = String::from("n,dmax,trials,engine,mean_augmentation,max_augmentation,mean_ms\n");
    println!(
        "{:>4} {:>5} {:<20} {:>9} {:>8} {:>9}",
        "n", "dmax", "engine", "mean aug", "max aug", "mean ms"
    );
    for &(n, dmax) in &configs {
        for engine in [
            RoundingEngine::IterativeRelaxation,
            RoundingEngine::BeckFiala,
        ] {
            let mut aug_sum = 0u64;
            let mut aug_max = 0u32;
            let mut ms_sum = 0.0;
            let mut solved = 0u64;
            for k in 0..trials {
                let mut rng = SmallRng::seed_from_u64(0xab1a + (n as u64 * 31) + k);
                let p = GenParams {
                    m: 4,
                    m_out: 4,
                    cap: 2 * dmax,
                    n,
                    max_demand: dmax,
                    max_release: (n / 3) as u64,
                };
                let inst = random_instance(&mut rng, &p);
                let rho = (n as u64 / 2).max(3);
                let tc = TimeConstrained::from_response_bound(&inst, rho);
                let start = Instant::now();
                if let Some(res) = round_time_constrained(&tc, engine).expect("solver") {
                    ms_sum += start.elapsed().as_secs_f64() * 1e3;
                    aug_sum += u64::from(res.augmentation);
                    aug_max = aug_max.max(res.augmentation);
                    solved += 1;
                }
            }
            let name = match engine {
                RoundingEngine::IterativeRelaxation => "IterativeRelaxation",
                RoundingEngine::BeckFiala => "BeckFiala",
            };
            let mean_aug = aug_sum as f64 / solved.max(1) as f64;
            let mean_ms = ms_sum / solved.max(1) as f64;
            println!("{n:>4} {dmax:>5} {name:<20} {mean_aug:>9.2} {aug_max:>8} {mean_ms:>9.2}");
            let _ = writeln!(
                csv,
                "{n},{dmax},{trials},{name},{mean_aug:.2},{aug_max},{mean_ms:.2}"
            );
        }
    }
    write_artifact("table_rounding_ablation.csv", &csv);
    println!("\nExpectation: IterativeRelaxation stays within 2*dmax-1 and is usually");
    println!("tighter; BeckFiala avoids LP re-solves (faster on large supports) with a");
    println!("looser < 4*dmax guarantee.");
}
