//! **Co-flow extension table** (paper §6's co-flow generalization):
//! SEBF / FIFO / Fair co-flow schedulers vs the bottleneck lower bound on
//! random shuffle workloads.
//!
//! ```sh
//! cargo run -p fss-bench --release --bin table_coflow [-- --quick]
//! ```

use fss_bench::{write_artifact, RunOptions};
use fss_coflow::instance::CoflowBuilder;
use fss_coflow::{
    bottleneck_lower_bound, evaluate, schedule_coflows, CoflowInstance, CoflowOrdering,
};
use fss_core::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::fmt::Write as _;

fn random_coflows(rng: &mut SmallRng, m: usize, k: usize, max_width: usize) -> CoflowInstance {
    let mut b = CoflowBuilder::new(Switch::uniform(m, m, 1));
    let mut release = 0u64;
    for _ in 0..k {
        b.coflow(release);
        let width = rng.gen_range(1..=max_width);
        for _ in 0..width {
            b.flow(rng.gen_range(0..m as u32), rng.gen_range(0..m as u32), 1);
        }
        release += rng.gen_range(0..3u64);
    }
    b.build().expect("generator produces valid instances")
}

fn main() {
    let opts = RunOptions::from_args();
    let trials = opts.trials.unwrap_or(if opts.quick { 2 } else { 10 });
    let configs: Vec<(usize, usize, usize)> = if opts.quick {
        vec![(4, 3, 4)]
    } else {
        vec![(6, 4, 6), (8, 8, 10), (12, 12, 20)]
    };

    let mut csv =
        String::from("m,coflows,max_width,trials,order,mean_total,mean_max,total_lb,max_lb\n");
    println!(
        "{:>3} {:>3} {:>6} {:<6} {:>11} {:>9} {:>9} {:>7}",
        "m", "k", "width", "order", "mean total", "mean max", "total LB", "max LB"
    );
    for &(m, k, w) in &configs {
        let mut totals = [0.0f64; 3];
        let mut maxes = [0.0f64; 3];
        let mut lb_total = 0.0;
        let mut lb_max = 0.0;
        for trial in 0..trials {
            let mut rng = SmallRng::seed_from_u64(0xc0f + (m as u64) * 1009 + trial);
            let ci = random_coflows(&mut rng, m, k, w);
            let (t_lb, m_lb) = bottleneck_lower_bound(&ci);
            lb_total += t_lb as f64;
            lb_max += m_lb as f64;
            for (oi, o) in [
                CoflowOrdering::Sebf,
                CoflowOrdering::Fifo,
                CoflowOrdering::Fair,
            ]
            .into_iter()
            .enumerate()
            {
                let met = evaluate(&ci, &schedule_coflows(&ci, o));
                totals[oi] += met.total_response as f64;
                maxes[oi] += met.max_response as f64;
            }
        }
        let t = trials as f64;
        for (oi, o) in [
            CoflowOrdering::Sebf,
            CoflowOrdering::Fifo,
            CoflowOrdering::Fair,
        ]
        .into_iter()
        .enumerate()
        {
            println!(
                "{m:>3} {k:>3} {w:>6} {:<6} {:>11.1} {:>9.1} {:>9.1} {:>7.1}",
                o.name(),
                totals[oi] / t,
                maxes[oi] / t,
                lb_total / t,
                lb_max / t
            );
            let _ = writeln!(
                csv,
                "{m},{k},{w},{trials},{},{:.2},{:.2},{:.2},{:.2}",
                o.name(),
                totals[oi] / t,
                maxes[oi] / t,
                lb_total / t,
                lb_max / t
            );
        }
    }
    write_artifact("table_coflow.csv", &csv);
    println!("\nExpected shape: SEBF lowest mean total (small co-flows first);");
    println!("FIFO lowest mean max; all above the bottleneck lower bounds.");
}
