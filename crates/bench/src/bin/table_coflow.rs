//! Thin wrapper over the `table_coflow` registry entry: runs it through the
//! benchmark orchestrator (accepts `--quick` and `--trials N`) and
//! writes `BENCH_table_coflow.json`. Equivalent to
//! `flowsched bench --filter table_coflow`.

fn main() {
    fss_bench::run_registry_bin("table_coflow");
}
