//! The telemetry contract, pinned as differentials: instrumentation
//! *observes* the round loop, it never steers it — the schedule an
//! instrumented run produces is bit-identical to the uninstrumented
//! one — and an enabled handle's cost on the hot path is bounded. The
//! precise overhead number lives in the release-build criterion
//! comparison (`benches/engine_vs_runner.rs`, target <= 5%); this test
//! asserts a conservative ceiling that holds in debug builds on noisy
//! CI runners (same spirit as `weighted_speedup.rs`).

use std::time::{Duration, Instant};

use fss_engine::{run_builtin, run_builtin_telemetry, BuiltinPolicy, EngineTelemetry};
use fss_sim::{poisson_workload, run_grid, run_grid_telemetry, ExperimentConfig, WorkloadParams};
use rand::{rngs::SmallRng, SeedableRng};

fn median_time(mut f: impl FnMut(), samples: usize) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn stress_cell() -> fss_core::Instance {
    let mut rng = SmallRng::seed_from_u64(0x7e1e_0b5e);
    poisson_workload(
        &mut rng,
        &WorkloadParams {
            m: 60,
            mean_arrivals: 120.0,
            rounds: 30,
        },
    )
}

#[test]
fn instrumented_schedule_is_bit_identical_for_every_policy() {
    let inst = stress_cell();
    for policy in [
        BuiltinPolicy::MaxCard,
        BuiltinPolicy::MinRTime,
        BuiltinPolicy::MaxWeight,
        BuiltinPolicy::FifoGreedy,
    ] {
        let plain = run_builtin(&inst, policy);
        let mut tele = EngineTelemetry::enabled();
        let instrumented = run_builtin_telemetry(&inst, policy, &mut tele);
        assert_eq!(
            plain, instrumented,
            "telemetry steered the {policy:?} schedule"
        );
        // And the observation is real, not a no-op: the round loop left
        // stage timings and decision-latency samples behind.
        let snap = tele.snapshot();
        assert!(snap.counter("rounds").unwrap_or(0) > 0);
        assert!(snap.slowest_stage().is_some());
        let histo = snap.histo("decision_latency_ns").expect("decision histo");
        assert!(histo.count > 0);
    }
}

#[test]
fn instrumented_grid_cells_match_uninstrumented_exactly() {
    let cfg = ExperimentConfig {
        m: 24,
        m_values: vec![24.0, 48.0],
        t_values: vec![12],
        trials: 2,
        seed: 0x5eed_f10e,
        policies: fss_sim::PolicyKind::PAPER_TRIO.to_vec(),
    };
    let plain = run_grid(&cfg);
    let (instrumented, snapshot) = run_grid_telemetry(&cfg);
    // CellResult carries only seed-deterministic aggregates, so full
    // serialized equality is the right bar: any telemetry-induced drift
    // in any metric of any cell fails here.
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&instrumented).unwrap(),
        "telemetry changed a grid cell"
    );
    assert!(!snapshot.is_empty());
    assert!(snapshot.counter("rounds").unwrap_or(0) > 0);
}

#[test]
fn enabled_handle_overhead_is_bounded() {
    let inst = stress_cell();
    // Warm up allocators and caches off the clock.
    std::hint::black_box(run_builtin(&inst, BuiltinPolicy::MaxCard));
    let t_disabled = median_time(
        || {
            let mut tele = EngineTelemetry::disabled();
            std::hint::black_box(run_builtin_telemetry(
                &inst,
                BuiltinPolicy::MaxCard,
                &mut tele,
            ));
        },
        5,
    );
    let t_enabled = median_time(
        || {
            let mut tele = EngineTelemetry::enabled();
            std::hint::black_box(run_builtin_telemetry(
                &inst,
                BuiltinPolicy::MaxCard,
                &mut tele,
            ));
        },
        5,
    );
    let ratio = t_enabled.as_secs_f64() / t_disabled.as_secs_f64().max(1e-9);
    eprintln!(
        "telemetry overhead m=60 T=30 M=2m: disabled {:.2} ms, enabled {:.2} ms ({ratio:.3}x)",
        t_disabled.as_secs_f64() * 1e3,
        t_enabled.as_secs_f64() * 1e3
    );
    // Debug-build ceiling; the release-build criterion medians sit
    // within a few percent.
    assert!(
        ratio <= 1.5,
        "enabled telemetry costs {ratio:.2}x the disabled run \
         (disabled {t_disabled:?}, enabled {t_enabled:?})"
    );
}
