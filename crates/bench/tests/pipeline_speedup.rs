//! Wall-clock floor for the pipelined multi-core engine: at 4 cores the
//! full-tier saturation cell (`m = 20`, `T = 5000`, 4 trials, seed
//! `0x5a7` — exactly the cell `bench --filter saturation` runs) must
//! beat the sequential drive by ≥ 1.8x. The criterion companion
//! (`benches/pipeline_engine.rs`) reports the curve across cores; this
//! test asserts the CI floor.
//!
//! Skips (loudly) when the host has fewer than 4 hardware threads —
//! time-sliced "parallelism" proves determinism, not speedup — and in
//! debug builds, where constant factors swamp the pipeline win; CI runs
//! it via `cargo test --release -p fss-bench --test pipeline_speedup`.

use std::time::{Duration, Instant};

use fss_engine::EngineTelemetry;
use fss_sim::{saturation_sweep_cores, PolicyKind};

fn median_time(mut f: impl FnMut(), samples: usize) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// The full-tier saturation cell at `cores` worker threads.
fn cell(cores: usize) -> Vec<fss_sim::SaturationPoint> {
    saturation_sweep_cores(
        PolicyKind::MaxWeight,
        20,
        5_000,
        &[1.0],
        4,
        0x5a7,
        cores,
        &mut EngineTelemetry::disabled(),
    )
}

#[test]
fn four_core_saturation_cell_hits_speedup_floor() {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if avail < 4 {
        eprintln!("pipeline speedup floor: SKIPPED (needs 4 hardware threads, host has {avail})");
        return;
    }
    if cfg!(debug_assertions) {
        eprintln!("pipeline speedup floor: SKIPPED (release-only; run with --release)");
        return;
    }

    // Parity first: the timing comparison is only fair (and the CI diff
    // gate only sound) if both drives produce the same numbers.
    let seq = cell(1);
    let par = cell(4);
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(
            (s.mean_response, s.max_response),
            (p.mean_response, p.max_response),
            "cores must never change results"
        );
    }

    let t1 = median_time(|| std::hint::black_box(cell(1)).clear(), 3);
    let t4 = median_time(|| std::hint::black_box(cell(4)).clear(), 3);
    let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
    eprintln!(
        "saturation cell m=20 T=5000 trials=4: 1 core {:.1} ms, 4 cores {:.1} ms ({speedup:.2}x)",
        t1.as_secs_f64() * 1e3,
        t4.as_secs_f64() * 1e3
    );
    assert!(
        speedup >= 1.8,
        "4-core pipeline must be >= 1.8x the sequential drive on the \
         full-tier saturation cell, got {speedup:.2}x (1 core {t1:?}, 4 cores {t4:?})"
    );
}
