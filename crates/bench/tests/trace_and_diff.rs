//! Integration tests for the runtime-built trace-replay experiment and
//! the artifact diff gate.

use std::path::PathBuf;

use fss_sim::report::bench_report_from_json;
use fss_sim::ScenarioSpec;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("fss-bench-trace-tests")
        .join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_sample_trace(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("trace.jsonl");
    let spec = ScenarioSpec::poisson(6, 4.0, 10, 77);
    spec.dump_trace().unwrap().save(&path).unwrap();
    path
}

#[test]
fn bench_trace_produces_schema_valid_artifact_and_self_diff_passes() {
    let dir = tmp_dir("artifact");
    let trace_path = write_sample_trace(&dir);

    let opts = fss_bench::BenchOptions {
        trace: Some(trace_path),
        out_dir: dir.clone(),
        smoke: true,
        ..Default::default()
    };
    let reports = fss_bench::run_bench(&opts).expect("trace bench runs");
    assert_eq!(reports.len(), 1, "--trace alone runs only the replay");
    let report = &reports[0];
    assert_eq!(report.experiment, "trace_replay");
    assert_eq!(report.cells.len(), 4, "one cell per policy");
    for cell in &report.cells {
        assert_eq!(cell.engine_mode, "stream");
        assert!(cell.flows > 0);
        assert!(cell.metric("mean_response").unwrap() >= 1.0);
    }

    // The artifact on disk parses and schema-validates.
    let artifact = dir.join("BENCH_trace_replay.json");
    let text = std::fs::read_to_string(&artifact).expect("artifact written");
    let parsed = bench_report_from_json(&text).expect("artifact is schema-valid");
    assert_eq!(&parsed, report);

    // Self-comparison must pass the regression gate.
    let diff = fss_bench::diff_artifacts(&artifact, &artifact, fss_bench::DEFAULT_TOLERANCE_PCT)
        .expect("self diff");
    assert!(diff.passes());
    assert_eq!(diff.cells.len(), 4);
}

#[test]
fn trace_replay_metrics_match_direct_scenario_runs() {
    let dir = tmp_dir("differential");
    let trace_path = write_sample_trace(&dir);

    let opts = fss_bench::BenchOptions {
        trace: Some(trace_path.clone()),
        out_dir: dir,
        ..Default::default()
    };
    let report = fss_bench::run_bench(&opts).unwrap().remove(0);

    let spec = ScenarioSpec::trace(trace_path.to_string_lossy());
    for policy in [
        fss_sim::PolicyKind::MaxCard,
        fss_sim::PolicyKind::MinRTime,
        fss_sim::PolicyKind::MaxWeight,
        fss_sim::PolicyKind::FifoGreedy,
    ] {
        let stats = fss_sim::run_scenario(&spec, policy).unwrap();
        let cell = report
            .cells
            .iter()
            .find(|c| c.param("policy") == Some(policy.name()))
            .expect("cell per policy");
        assert_eq!(cell.metric("mean_response"), Some(stats.mean_response()));
        assert_eq!(
            cell.metric("max_response"),
            Some(stats.max_response as f64),
            "{}",
            policy.name()
        );
        assert_eq!(cell.flows, stats.dispatched);
    }
}

#[test]
fn bad_trace_file_is_a_clean_error() {
    let dir = tmp_dir("bad");
    let path = dir.join("bad.jsonl");
    std::fs::write(
        &path,
        "{\"ports\":2}\n{\"release\":0,\"src\":5,\"dst\":0}\n",
    )
    .unwrap();
    let opts = fss_bench::BenchOptions {
        trace: Some(path),
        out_dir: dir,
        ..Default::default()
    };
    let err = fss_bench::run_bench(&opts).unwrap_err();
    assert!(err.contains("port 5 out of range"), "{err}");
}

#[test]
fn trace_joins_filtered_registry_experiments() {
    let dir = tmp_dir("joined");
    let trace_path = write_sample_trace(&dir);
    let opts = fss_bench::BenchOptions {
        filter: Some("saturation".into()),
        trace: Some(trace_path),
        smoke: true,
        trials: Some(1),
        out_dir: dir,
        ..Default::default()
    };
    let reports = fss_bench::run_bench(&opts).unwrap();
    let ids: Vec<&str> = reports.iter().map(|r| r.experiment.as_str()).collect();
    assert_eq!(ids, vec!["saturation", "trace_replay"]);
}
