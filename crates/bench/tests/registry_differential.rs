//! Differential tests: the registry's per-cell runners must reproduce
//! the numbers the legacy one-off bins computed with direct library
//! calls on the same (small) grids.
//!
//! The legacy bins ran whole grids in one `run_grid` /
//! `lp_bounds_grid_parts` / `saturation_sweep` call; the registry runs
//! singleton grids per cell. The value-derived trial seeds make those
//! equal — these tests pin that equivalence down.

use fss_bench::{select, CellOutcome, CellSpec, Scale};
use fss_sim::{
    lp_bounds_grid_parts, run_grid, saturation_sweep, stable_intensity, ExperimentConfig,
    LpBoundParts, PolicyKind,
};

fn build(id: &str, scale: &Scale) -> Vec<CellSpec> {
    let exp = select(Some(id)).pop().expect("experiment registered");
    (exp.build)(scale)
}

fn run_cell(cells: &[CellSpec], id: &str) -> CellOutcome {
    let cell = cells
        .iter()
        .find(|c| c.id == id)
        .unwrap_or_else(|| panic!("no cell {id}"));
    (cell.run)()
}

fn metric(outcome: &CellOutcome, name: &str) -> f64 {
    outcome
        .metrics
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("no metric {name}"))
        .1
}

#[test]
fn fig6_heuristic_cells_match_legacy_whole_grid_run() {
    let scale = Scale {
        smoke: true,
        trials: Some(2),
        ..Scale::default()
    };
    let cells = build("fig6", &scale);
    // What the legacy fig6 bin computed: one run_grid over the full
    // smoke grid (m=8, T ∈ {6, 8}, paper trio, paired seeds).
    let cfg = ExperimentConfig::scaled(8, vec![6, 8], 2);
    let legacy = run_grid(&cfg);
    assert_eq!(legacy.len(), 3 * 5 * 2);
    for lr in &legacy {
        let ma = if lr.mean_arrivals.fract() == 0.0 {
            format!("{}", lr.mean_arrivals)
        } else {
            format!("{:.2}", lr.mean_arrivals)
        };
        let id = format!("fig6/{}/M{ma}/T{}", lr.policy.name(), lr.rounds);
        let got = run_cell(&cells, &id);
        assert_eq!(
            metric(&got, "avg_response"),
            lr.avg_response,
            "{id}: avg_response"
        );
        assert_eq!(
            metric(&got, "max_response"),
            lr.max_response,
            "{id}: max_response"
        );
        assert_eq!(
            metric(&got, "mean_flows"),
            lr.mean_flows,
            "{id}: mean_flows"
        );
    }
}

#[test]
fn fig6_lp_cell_matches_legacy_windowed_bound() {
    let scale = Scale {
        smoke: true,
        trials: Some(2),
        ..Scale::default()
    };
    let cells = build("fig6", &scale);
    // Legacy fig6 --quick: lp trials 1, T = {6}; per-M window =
    // max(ceil(lambda * t_max), 8) + 4 with lambda = M/m.
    let base = ExperimentConfig::scaled(8, vec![6, 8], 2);
    let ma = base.m_values[0];
    let window = ((ma / 8.0) * 6.0).ceil().max(8.0) as u64 + 4;
    let lp_cfg = ExperimentConfig {
        m_values: vec![ma],
        t_values: vec![6],
        trials: 1,
        ..base
    };
    let legacy = lp_bounds_grid_parts(&lp_cfg, Some(window), LpBoundParts::AVG)
        .pop()
        .unwrap();
    let got = run_cell(&cells, "fig6/lp/M2.67/T6");
    assert_eq!(
        metric(&got, "avg_response_bound"),
        legacy.avg_response_bound
    );
}

#[test]
fn fig7_lp_cell_matches_legacy_max_bound() {
    let scale = Scale {
        smoke: true,
        trials: Some(2),
        ..Scale::default()
    };
    let cells = build("fig7", &scale);
    let base = ExperimentConfig::scaled(8, vec![6, 8], 2);
    let lp_cfg = ExperimentConfig {
        m_values: vec![base.m_values[0]],
        t_values: vec![6],
        trials: 1,
        ..base
    };
    let legacy = lp_bounds_grid_parts(&lp_cfg, None, LpBoundParts::MAX)
        .pop()
        .unwrap();
    let got = run_cell(&cells, "fig7/lp/M2.67/T6");
    assert_eq!(
        metric(&got, "max_response_bound"),
        legacy.max_response_bound
    );
}

#[test]
fn saturation_cells_match_legacy_sweep() {
    let scale = Scale {
        smoke: true,
        trials: Some(2),
        ..Scale::default()
    };
    let cells = build("saturation", &scale);
    // Legacy saturation --quick: m=6, rounds=10, seed 0x5a7 for the
    // sweep and 0x5a8 for the knee.
    let legacy = saturation_sweep(PolicyKind::MaxCard, 6, 10, &[0.4, 1.25], 2, 0x5a7);
    let got = run_cell(&cells, "saturation/MaxCard/lam0.4");
    assert_eq!(metric(&got, "mean_response"), legacy[0].mean_response);
    assert_eq!(metric(&got, "max_response"), legacy[0].max_response);
    let got = run_cell(&cells, "saturation/MaxCard/lam1.25");
    assert_eq!(metric(&got, "mean_response"), legacy[1].mean_response);

    let knee = stable_intensity(PolicyKind::MaxCard, 6, 10, 4.0, 2, 0x5a8);
    let got = run_cell(&cells, "saturation/knee/MaxCard");
    assert_eq!(metric(&got, "stable_intensity"), knee);
}

#[test]
fn registry_cells_are_deterministic_across_runs() {
    let scale = Scale {
        smoke: true,
        trials: Some(1),
        ..Scale::default()
    };
    for id in ["table_mrt", "table_coflow"] {
        let a = build(id, &scale);
        let b = build(id, &scale);
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.id, cb.id);
            let ra = (ca.run)();
            let rb = (cb.run)();
            // mean_ms-style timing metrics are excluded by construction
            // in these two experiments; everything must match bit-exact.
            assert_eq!(ra.metrics, rb.metrics, "{id}/{}", ca.id);
            assert_eq!(ra.flows, rb.flows);
        }
    }
}
