//! End-to-end orchestrator tests: artifacts on disk, JSONL stream,
//! schema round-trip, and filter errors.

use fss_bench::{run_bench, BenchOptions, CELLS_STREAM_NAME};
use fss_sim::report::{bench_artifact_name, bench_report_from_json, BenchCell};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fss-bench-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn run_bench_writes_valid_artifacts_and_stream() {
    let out = tmp_dir("gaps");
    let opts = BenchOptions {
        filter: Some("table_gaps".into()),
        smoke: true,
        out_dir: out.clone(),
        ..BenchOptions::default()
    };
    let reports = run_bench(&opts).expect("orchestrator runs");
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.experiment, "table_gaps");
    assert_eq!(report.cells.len(), 3);
    assert!(report.jobs >= 1);

    // The persisted artifact round-trips to exactly the in-memory report.
    let path = out.join(bench_artifact_name("table_gaps"));
    let text = std::fs::read_to_string(&path).expect("artifact written");
    let parsed = bench_report_from_json(&text).expect("artifact schema-valid");
    assert_eq!(&parsed, report);

    // The JSONL stream has one parseable line per cell.
    let stream = std::fs::read_to_string(out.join(CELLS_STREAM_NAME)).expect("stream written");
    let lines: Vec<&str> = stream.lines().collect();
    assert_eq!(lines.len(), report.cells.len());
    for line in lines {
        let cell: BenchCell = serde_json::from_str(line).expect("line parses");
        assert!(report.cells.iter().any(|c| c == &cell), "cell in report");
    }
}

#[test]
fn unknown_filter_is_an_error_listing_known_ids() {
    let opts = BenchOptions {
        filter: Some("no-such-experiment".into()),
        smoke: true,
        out_dir: tmp_dir("unknown"),
        ..BenchOptions::default()
    };
    let err = run_bench(&opts).expect_err("unknown filter must fail");
    assert!(err.contains("no experiment matches"), "{err}");
    assert!(err.contains("fig6"), "error lists known ids: {err}");
}

#[test]
fn substring_filter_selects_multiple_experiments() {
    let out = tmp_dir("multi");
    let opts = BenchOptions {
        // "gaps" and "coflow" are cheap; "table" would also pull in the
        // LP-heavy tables, so use an exact cheap pair via two runs.
        filter: Some("table_gaps".into()),
        smoke: true,
        out_dir: out.clone(),
        trials: Some(1),
        ..BenchOptions::default()
    };
    run_bench(&opts).unwrap();
    let opts = BenchOptions {
        filter: Some("table_coflow".into()),
        out_dir: out.clone(),
        smoke: true,
        trials: Some(1),
        ..BenchOptions::default()
    };
    run_bench(&opts).unwrap();
    assert!(out.join(bench_artifact_name("table_gaps")).exists());
    assert!(out.join(bench_artifact_name("table_coflow")).exists());
}
