//! Wall-clock evidence for the incremental weighted matching: on the
//! paper's weighted hot path the engine must beat the from-scratch batch
//! Hungarian by a wide margin. The release-build criterion medians
//! (`weighted_matching.rs`) show ~6x for MinRTime and ~8x for MaxWeight
//! at `m = 150, T = 40, M = 4m`; this test asserts a conservative 2x
//! floor on a smaller cell so it holds in debug builds on noisy CI
//! runners (same spirit as the rayon shim's `steal_speedup` test).

use std::time::{Duration, Instant};

use fss_engine::{run_builtin, BuiltinPolicy};
use fss_online::{run_policy, BatchMinRTime};
use fss_sim::{poisson_workload, WorkloadParams};
use rand::{rngs::SmallRng, SeedableRng};

fn median_time(mut f: impl FnMut(), samples: usize) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[test]
fn incremental_weighted_engine_beats_batch_hungarian() {
    // A mid-size weighted cell: big enough that the per-round Hungarian
    // dominates the batch path, small enough to stay fast in debug.
    let mut rng = SmallRng::seed_from_u64(0x005e_ed70);
    let inst = poisson_workload(
        &mut rng,
        &WorkloadParams {
            m: 60,
            mean_arrivals: 120.0,
            rounds: 30,
        },
    );
    // Parity first: the comparison is only fair if both paths solve the
    // same scheduling problem round for round.
    let engine = run_builtin(&inst, BuiltinPolicy::MinRTime);
    let legacy = fss_engine::run_policy(&inst, &mut fss_online::MinRTime::default());
    assert_eq!(engine, legacy, "weighted engine path lost schedule parity");

    let t_batch = median_time(
        || {
            std::hint::black_box(run_policy(&inst, &mut BatchMinRTime::default()));
        },
        3,
    );
    let t_engine = median_time(
        || {
            std::hint::black_box(run_builtin(&inst, BuiltinPolicy::MinRTime));
        },
        3,
    );
    let speedup = t_batch.as_secs_f64() / t_engine.as_secs_f64().max(1e-9);
    eprintln!(
        "weighted cell m=60 T=30 M=2m: batch {:.1} ms, engine {:.1} ms ({speedup:.2}x)",
        t_batch.as_secs_f64() * 1e3,
        t_engine.as_secs_f64() * 1e3
    );
    assert!(
        speedup >= 2.0,
        "incremental weighted path must be >= 2x faster than the batch \
         Hungarian, got {speedup:.2}x (batch {t_batch:?}, engine {t_engine:?})"
    );
}
