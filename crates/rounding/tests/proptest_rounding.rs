//! Property tests for the rounding engines.

use fss_rounding::{beck_fiala, iterative_relaxation, IterativeOptions, RoundingProblem};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawProblem {
    groups_n: usize,
    opts: usize,
    rows: Vec<Vec<(usize, u32)>>, // (var, coefficient)
}

fn raw_problem() -> impl Strategy<Value = RawProblem> {
    (1usize..=6, 2usize..=4).prop_flat_map(|(groups_n, opts)| {
        let num_vars = groups_n * opts;
        let term = (0..num_vars, 1u32..=3);
        let row = proptest::collection::vec(term, 1..=num_vars.min(8));
        let rows = proptest::collection::vec(row, 0..=5);
        rows.prop_map(move |rows| RawProblem {
            groups_n,
            opts,
            rows,
        })
    })
}

/// Build a problem whose uniform fractional point `x = 1/opts` is feasible
/// (rhs = the uniform point's load), so the bounds are meaningful.
fn build(raw: &RawProblem) -> (RoundingProblem, Vec<f64>) {
    let num_vars = raw.groups_n * raw.opts;
    let groups: Vec<Vec<usize>> = (0..raw.groups_n)
        .map(|g| (g * raw.opts..(g + 1) * raw.opts).collect())
        .collect();
    let mut capacities = Vec::new();
    for row in &raw.rows {
        // Deduplicate variables, summing coefficients.
        let mut acc = std::collections::BTreeMap::<usize, f64>::new();
        for &(v, c) in row {
            *acc.entry(v).or_insert(0.0) += f64::from(c);
        }
        let terms: Vec<(usize, f64)> = acc.into_iter().collect();
        let rhs: f64 = terms.iter().map(|&(_, c)| c).sum::<f64>() / raw.opts as f64;
        capacities.push((terms, rhs));
    }
    let p = RoundingProblem {
        num_vars,
        groups,
        capacities,
    };
    let x0 = vec![1.0 / raw.opts as f64; num_vars];
    (p, x0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn beck_fiala_respects_delta(raw in raw_problem()) {
        let (p, x0) = build(&raw);
        let delta = 2.0 * p.max_column_mass();
        let out = beck_fiala(&p, &x0);
        prop_assert_eq!(out.chosen.len(), p.groups.len());
        // Guarantee: violation < delta (strict), with float slack.
        prop_assert!(out.max_violation < delta + 1e-6,
            "violation {} vs delta {delta}", out.max_violation);
        // Consistency: reported violation matches recomputation.
        prop_assert!((out.max_violation - p.max_violation(&out.chosen)).abs() < 1e-9);
    }

    #[test]
    fn iterative_relaxation_solves_feasible_problems(raw in raw_problem()) {
        let (p, _) = build(&raw);
        // Budget equal to the largest coefficient's 2x-1 (dmax analog).
        let dmax = p.capacities.iter()
            .flat_map(|(t, _)| t.iter().map(|&(_, c)| c))
            .fold(1.0f64, f64::max);
        let opts = IterativeOptions { budget: 2.0 * dmax - 1.0, tol: 1e-7 };
        // The uniform point is feasible, so the LP is feasible.
        let out = iterative_relaxation(&p, &opts).expect("feasible by construction");
        prop_assert_eq!(out.chosen.len(), p.groups.len());
        // The Beck-Fiala-style global bound still caps the outcome even
        // when stall-drops fire.
        let delta = 2.0 * p.max_column_mass();
        prop_assert!(out.max_violation <= delta + 1e-6,
            "violation {} vs global cap {delta}", out.max_violation);
    }

    #[test]
    fn engines_agree_on_chosen_count_and_group_membership(raw in raw_problem()) {
        let (p, x0) = build(&raw);
        let a = beck_fiala(&p, &x0);
        let dmax = p.capacities.iter()
            .flat_map(|(t, _)| t.iter().map(|&(_, c)| c))
            .fold(1.0f64, f64::max);
        let b = iterative_relaxation(&p, &IterativeOptions { budget: 2.0 * dmax - 1.0, tol: 1e-7 })
            .expect("feasible");
        for (gi, group) in p.groups.iter().enumerate() {
            prop_assert!(group.contains(&a.chosen[gi]));
            prop_assert!(group.contains(&b.chosen[gi]));
        }
    }
}
