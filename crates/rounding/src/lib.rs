//! # fss-rounding — dependent rounding engines
//!
//! Theorem 3 of the paper rounds a fractional solution of the
//! time-constrained LP (19)–(21) into an integral schedule whose flow rows
//! stay *exact* (every flow scheduled exactly once) while each port/round
//! capacity row is overloaded by at most `2·dmax − 1`. The paper invokes
//! the rounding theorem of Karp, Leighton, Rivest, Thompson, Vazirani and
//! Vazirani (reference \[35\], restated as Lemma 4.3).
//!
//! This crate implements two constructive engines over a shared
//! [`RoundingProblem`] shape (disjoint assignment groups + capacity rows):
//!
//! * [`beck_fiala()`](beck_fiala::beck_fiala) — an LP-free floating-variable kernel walk in the style
//!   of Beck–Fiala. With the automatically derived threshold
//!   `Δ = 2 · max_col` (twice the largest column L1-mass over capacity
//!   rows; for flow scheduling `max_col = 2·dmax`, so `Δ = 4·dmax`), the
//!   counting argument is airtight: a kernel direction always exists, the
//!   walk terminates, groups stay exact, and every capacity row is violated
//!   by *less than* `Δ`.
//! * [`iterative_relaxation`] — Lau–Ravi–Singh style iterative LP
//!   relaxation targeting a caller-chosen violation budget (the paper's
//!   `2·dmax − 1`). It re-solves the LP at a vertex, freezes integral
//!   variables, and drops capacity rows that can no longer exceed the
//!   budget. On degenerate stalls it drops the least-dangerous row and
//!   *reports* the actually-achieved violation, so callers always learn the
//!   true augmentation (tests in `fss-offline` assert the paper's bound is
//!   met on randomized instances).
//!
//! Both engines return a [`RoundingOutcome`] with the chosen variable per
//! group and the measured maximum violation.

pub mod beck_fiala;
pub mod iterative;
pub mod problem;

pub use beck_fiala::beck_fiala;
pub use iterative::{iterative_relaxation, IterativeOptions};
pub use problem::{RoundingError, RoundingOutcome, RoundingProblem};
