//! Iterative LP relaxation (Lau–Ravi–Singh style).
//!
//! Targets the paper's `2·dmax − 1` additive budget: repeatedly solve the
//! current LP at a vertex, freeze variables that the vertex already makes
//! integral, and *drop* any capacity row that can no longer be violated by
//! more than the budget even if all of its surviving variables round to 1.
//! Once every capacity row is dropped, the remaining LP is a product of
//! simplices whose vertices are integral, so the process terminates.
//!
//! On the (degeneracy-induced) iterations where nothing freezes and no row
//! is safely droppable, the engine drops the row with the smallest
//! worst-case overshoot and keeps going. The final violation is therefore
//! *measured* rather than assumed — [`crate::RoundingOutcome::max_violation`]
//! always reports the truth, and the caller decides whether the paper's
//! bound held (the `fss-offline` test-suite asserts it does on randomized
//! flow-scheduling instances).

use fss_lp::{Cmp, LpBuilder, LpStatus, SimplexOptions};

use crate::beck_fiala::extract;
use crate::problem::{RoundingError, RoundingOutcome, RoundingProblem};

/// Options for [`iterative_relaxation`].
#[derive(Debug, Clone)]
pub struct IterativeOptions {
    /// Additive violation budget used by the safe row-drop rule (the paper
    /// uses `2·dmax − 1`).
    pub budget: f64,
    /// Integrality tolerance.
    pub tol: f64,
}

impl IterativeOptions {
    /// Budget `2·dmax − 1` for a given maximum demand.
    pub fn for_dmax(dmax: u32) -> Self {
        IterativeOptions {
            budget: f64::from(2 * dmax - 1),
            tol: 1e-7,
        }
    }
}

/// Round `problem` by iterative LP relaxation. Unlike [`crate::beck_fiala()`](crate::beck_fiala::beck_fiala)
/// this engine solves its own LPs, so no starting point is required;
/// returns [`RoundingError::Infeasible`] when no fractional solution exists
/// at all.
pub fn iterative_relaxation(
    problem: &RoundingProblem,
    opts: &IterativeOptions,
) -> Result<RoundingOutcome, RoundingError> {
    problem.assert_valid();
    let n = problem.num_vars;
    let mut alive = vec![true; n];
    let mut fixed_choice: Vec<Option<usize>> = vec![None; problem.groups.len()];
    let mut dropped = vec![false; problem.capacities.len()];
    let mut fixed_load = vec![0.0f64; problem.capacities.len()];

    // Pre-index: capacity rows touching each variable.
    let mut rows_of_var: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (ri, (terms, _)) in problem.capacities.iter().enumerate() {
        for &(v, c) in terms {
            rows_of_var[v].push((ri, c));
        }
    }

    let mut first_iteration = true;
    loop {
        if fixed_choice.iter().all(Option::is_some) {
            break;
        }

        // Build the current LP over alive vars of unfixed groups.
        let mut lp = LpBuilder::minimize();
        let mut var_ids = vec![None; n];
        for (gi, group) in problem.groups.iter().enumerate() {
            if fixed_choice[gi].is_some() {
                continue;
            }
            for &v in group {
                if alive[v] {
                    var_ids[v] = Some(lp.var(0.0));
                }
            }
        }
        for (gi, group) in problem.groups.iter().enumerate() {
            if fixed_choice[gi].is_some() {
                continue;
            }
            let terms: Vec<_> = group
                .iter()
                .filter_map(|&v| var_ids[v].map(|id| (id, 1.0)))
                .collect();
            lp.constraint(&terms, Cmp::Eq, 1.0);
        }
        for (ri, (terms, rhs)) in problem.capacities.iter().enumerate() {
            if dropped[ri] {
                continue;
            }
            let live_terms: Vec<_> = terms
                .iter()
                .filter_map(|&(v, c)| var_ids[v].map(|id| (id, c)))
                .collect();
            if live_terms.is_empty() {
                dropped[ri] = true; // fully determined; nothing left to bound
                continue;
            }
            lp.constraint(&live_terms, Cmp::Le, rhs - fixed_load[ri]);
        }

        let sol = lp
            .solve_with(&SimplexOptions::default())
            .map_err(|e| RoundingError::SolverFailure(e.to_string()))?;
        match sol.status {
            LpStatus::Optimal => {}
            LpStatus::Infeasible if first_iteration => {
                return Err(RoundingError::Infeasible);
            }
            status => {
                return Err(RoundingError::SolverFailure(format!(
                    "unexpected status {status:?} after relaxation step"
                )));
            }
        }
        first_iteration = false;

        let value = |v: usize| var_ids[v].map_or(0.0, |id| sol.x[id.idx()]);

        // Freeze integral variables.
        let mut progressed = false;
        for (gi, group) in problem.groups.iter().enumerate() {
            if fixed_choice[gi].is_some() {
                continue;
            }
            if let Some(&v) = group
                .iter()
                .find(|&&v| alive[v] && value(v) >= 1.0 - opts.tol)
            {
                fixed_choice[gi] = Some(v);
                for &(ri, c) in &rows_of_var[v] {
                    fixed_load[ri] += c;
                }
                for &w in group {
                    alive[w] = false;
                }
                progressed = true;
            } else {
                // Kill zero variables to shrink the support.
                for &v in group {
                    if alive[v] && var_ids[v].is_some() && value(v) <= opts.tol {
                        alive[v] = false;
                        progressed = true;
                    }
                }
            }
        }

        // Safe drops: rows that cannot exceed rhs + budget any more.
        let mut stall_candidate: Option<(usize, f64)> = None;
        for (ri, (terms, rhs)) in problem.capacities.iter().enumerate() {
            if dropped[ri] {
                continue;
            }
            let potential: f64 = terms
                .iter()
                .filter(|&&(v, _)| alive[v])
                .map(|&(_, c)| c)
                .sum();
            let overshoot = fixed_load[ri] + potential - rhs;
            if overshoot <= opts.budget + 1e-9 {
                dropped[ri] = true;
                progressed = true;
            } else {
                let best = stall_candidate.map_or(f64::INFINITY, |(_, o)| o);
                if overshoot < best {
                    stall_candidate = Some((ri, overshoot));
                }
            }
        }

        if !progressed {
            // Degenerate stall: drop the least dangerous row and continue.
            // The final outcome reports the measured violation regardless.
            match stall_candidate {
                Some((ri, _)) => dropped[ri] = true,
                None => unreachable!(
                    "no progress with every capacity row dropped: the \
                     remaining LP is a product of simplices with integral \
                     vertices"
                ),
            }
        }
    }

    let mut x = vec![0.0; n];
    for choice in fixed_choice.iter() {
        x[choice.expect("loop exits only when all groups fixed")] = 1.0;
    }
    Ok(extract(problem, &x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_problem(
        groups: Vec<Vec<usize>>,
        caps: Vec<(Vec<(usize, f64)>, f64)>,
    ) -> RoundingProblem {
        let num_vars = groups.iter().map(|g| g.len()).sum();
        RoundingProblem {
            num_vars,
            groups,
            capacities: caps,
        }
    }

    #[test]
    fn feasible_integral_instance_is_exact() {
        // Two groups, capacities admit an integral solution with zero
        // violation: flow 0 at round 0, flow 1 at round 1.
        let p = unit_problem(
            vec![vec![0, 1], vec![2, 3]],
            vec![
                (vec![(0, 1.0), (2, 1.0)], 1.0),
                (vec![(1, 1.0), (3, 1.0)], 1.0),
            ],
        );
        let out = iterative_relaxation(&p, &IterativeOptions::for_dmax(1)).unwrap();
        assert_eq!(out.chosen.len(), 2);
        assert!(out.max_violation <= 1.0); // 2*dmax - 1 = 1
    }

    #[test]
    fn infeasible_lp_reported() {
        // One group, its single var appears in a capacity row with rhs 0:
        // sum = 1 is incompatible with load <= 0.
        let p = unit_problem(vec![vec![0]], vec![(vec![(0, 1.0)], 0.0)]);
        let err = iterative_relaxation(&p, &IterativeOptions::for_dmax(1)).unwrap_err();
        assert_eq!(err, RoundingError::Infeasible);
    }

    #[test]
    fn violation_within_budget_on_random_unit_instances() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4242);
        for _ in 0..30 {
            let groups_n = rng.gen_range(2..8);
            let opts_n = rng.gen_range(2..4);
            let mut groups = Vec::new();
            let mut v = 0;
            for _ in 0..groups_n {
                groups.push((v..v + opts_n).collect::<Vec<_>>());
                v += opts_n;
            }
            // Unit-coefficient capacity rows with the fractional uniform
            // point feasible.
            let mut caps = Vec::new();
            for _ in 0..rng.gen_range(1..6) {
                let mut terms = Vec::new();
                for j in 0..v {
                    if rng.gen_bool(0.5) {
                        terms.push((j, 1.0));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                let rhs = terms.len() as f64 / opts_n as f64;
                caps.push((terms, rhs.ceil()));
            }
            let p = RoundingProblem {
                num_vars: v,
                groups,
                capacities: caps,
            };
            let out = iterative_relaxation(&p, &IterativeOptions::for_dmax(1)).unwrap();
            // Budget for dmax = 1 is 1.
            assert!(
                out.max_violation <= 1.0 + 1e-9,
                "violation {} exceeds 2*dmax-1 = 1",
                out.max_violation
            );
        }
    }

    #[test]
    fn single_option_groups_are_forced() {
        let p = unit_problem(
            vec![vec![0], vec![1]],
            vec![(vec![(0, 1.0), (1, 1.0)], 2.0)],
        );
        let out = iterative_relaxation(&p, &IterativeOptions::for_dmax(1)).unwrap();
        assert_eq!(out.chosen, vec![0, 1]);
        assert_eq!(out.max_violation, 0.0);
    }
}
