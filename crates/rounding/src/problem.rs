//! Shared problem shape and outcome types for the rounding engines.

/// A dependent rounding problem:
///
/// * `num_vars` variables `x_j ∈ [0, 1]`;
/// * disjoint `groups` of variables, each required to have **exactly one**
///   variable rounded to 1 (the flow rows of LP (19)–(21));
/// * `capacities`: sparse rows `(terms, rhs)` with nonnegative coefficients
///   whose final load should stay close to `rhs` (the port/round rows).
///
/// Every variable must belong to exactly one group; capacity rows may touch
/// any subset of variables.
#[derive(Debug, Clone)]
pub struct RoundingProblem {
    /// Total number of variables.
    pub num_vars: usize,
    /// Disjoint variable groups; exactly one member of each is chosen.
    pub groups: Vec<Vec<usize>>,
    /// Capacity rows as `(sparse terms, rhs)`; coefficients must be `>= 0`.
    pub capacities: Vec<(Vec<(usize, f64)>, f64)>,
}

impl RoundingProblem {
    /// Validate structural invariants; panics with a message on violation.
    /// Called by both engines on entry (cheap relative to the solve).
    pub fn assert_valid(&self) {
        let mut owner = vec![usize::MAX; self.num_vars];
        for (gi, group) in self.groups.iter().enumerate() {
            assert!(!group.is_empty(), "group {gi} is empty");
            for &v in group {
                assert!(v < self.num_vars, "group {gi}: var {v} out of range");
                assert_eq!(owner[v], usize::MAX, "var {v} in two groups");
                owner[v] = gi;
            }
        }
        assert!(
            owner.iter().all(|&o| o != usize::MAX),
            "every variable must belong to a group"
        );
        for (ri, (terms, rhs)) in self.capacities.iter().enumerate() {
            assert!(rhs.is_finite(), "capacity {ri}: rhs not finite");
            for &(v, c) in terms {
                assert!(v < self.num_vars, "capacity {ri}: var {v} out of range");
                assert!(c >= 0.0, "capacity {ri}: negative coefficient {c}");
            }
        }
    }

    /// Map each variable to its group index.
    pub fn owner_of(&self) -> Vec<usize> {
        let mut owner = vec![usize::MAX; self.num_vars];
        for (gi, group) in self.groups.iter().enumerate() {
            for &v in group {
                owner[v] = gi;
            }
        }
        owner
    }

    /// Largest column L1-mass over the capacity rows: for each variable,
    /// the sum of its (nonnegative) capacity coefficients; maximized over
    /// variables. This is the `max_col` the Beck–Fiala threshold doubles.
    pub fn max_column_mass(&self) -> f64 {
        let mut col = vec![0.0f64; self.num_vars];
        for (terms, _) in &self.capacities {
            for &(v, c) in terms {
                col[v] += c;
            }
        }
        col.into_iter().fold(0.0, f64::max)
    }

    /// Evaluate an integral choice (one variable per group): the maximum
    /// capacity-row violation `max(0, load - rhs)` over all rows.
    pub fn max_violation(&self, chosen: &[usize]) -> f64 {
        assert_eq!(chosen.len(), self.groups.len(), "one choice per group");
        let mut selected = vec![false; self.num_vars];
        for (gi, &v) in chosen.iter().enumerate() {
            assert!(
                self.groups[gi].contains(&v),
                "chosen var {v} not in group {gi}"
            );
            selected[v] = true;
        }
        let mut worst = 0.0f64;
        for (terms, rhs) in &self.capacities {
            let load: f64 = terms
                .iter()
                .filter(|&&(v, _)| selected[v])
                .map(|&(_, c)| c)
                .sum();
            worst = worst.max(load - rhs);
        }
        worst
    }
}

/// Result of a rounding engine.
#[derive(Debug, Clone)]
pub struct RoundingOutcome {
    /// Chosen variable per group (index into `0..num_vars`).
    pub chosen: Vec<usize>,
    /// Measured maximum violation `max(0, load - rhs)` over capacity rows.
    pub max_violation: f64,
}

/// Engine failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundingError {
    /// The internal LP was infeasible — the supplied problem has no
    /// fractional solution (iterative engine only).
    Infeasible,
    /// The LP solver ran out of pivots.
    SolverFailure(String),
}

impl std::fmt::Display for RoundingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundingError::Infeasible => write!(f, "rounding LP infeasible"),
            RoundingError::SolverFailure(m) => write!(f, "LP solver failure: {m}"),
        }
    }
}

impl std::error::Error for RoundingError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RoundingProblem {
        RoundingProblem {
            num_vars: 4,
            groups: vec![vec![0, 1], vec![2, 3]],
            capacities: vec![
                (vec![(0, 1.0), (2, 1.0)], 1.0),
                (vec![(1, 1.0), (3, 1.0)], 1.0),
            ],
        }
    }

    #[test]
    fn valid_problem_passes() {
        tiny().assert_valid();
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn overlapping_groups_rejected() {
        let mut p = tiny();
        p.groups[1] = vec![1, 3];
        p.assert_valid();
    }

    #[test]
    #[should_panic(expected = "must belong")]
    fn orphan_variable_rejected() {
        let mut p = tiny();
        p.groups[0] = vec![0];
        p.assert_valid();
    }

    #[test]
    fn max_column_mass_sums_per_variable() {
        let p = RoundingProblem {
            num_vars: 2,
            groups: vec![vec![0], vec![1]],
            capacities: vec![(vec![(0, 2.0), (1, 1.0)], 5.0), (vec![(0, 3.0)], 5.0)],
        };
        assert_eq!(p.max_column_mass(), 5.0);
    }

    #[test]
    fn violation_evaluation() {
        let p = tiny();
        // Choose 0 and 2: row 0 load = 2 > rhs 1 -> violation 1.
        assert_eq!(p.max_violation(&[0, 2]), 1.0);
        // Choose 0 and 3: loads 1 and 1 -> violation 0.
        assert_eq!(p.max_violation(&[0, 3]), 0.0);
    }

    #[test]
    #[should_panic(expected = "not in group")]
    fn violation_rejects_wrong_choice() {
        let p = tiny();
        let _ = p.max_violation(&[2, 3]);
    }
}
