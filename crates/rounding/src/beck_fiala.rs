//! Beck–Fiala style floating-variable kernel walk.
//!
//! Given a fractional point `x` that satisfies every group row exactly
//! (`sum over group = 1`), repeatedly:
//!
//! 1. collect the *floating* variables `F = {j : tol < x_j < 1 - tol}`;
//! 2. mark *active* rows — every group row containing a floating variable
//!    (such a row always contains at least two of them, since the group sum
//!    is integral) and every capacity row whose floating coefficient mass
//!    exceeds the threshold `Δ = 2 · max_col`;
//! 3. find a nonzero kernel direction of the active rows restricted to `F`
//!    and walk until a variable hits 0 or 1.
//!
//! Counting argument for step 3: each active group row has ≥ 2 floating
//! variables and the groups are disjoint, so there are at most `|F|/2`
//! active group rows; the active capacity rows each carry > `Δ = 2·max_col`
//! floating mass while the total available mass is at most `|F| · max_col`,
//! so there are strictly fewer than `|F|/2` of them. Total active rows
//! `< |F|`, hence the kernel is nonempty and the walk always progresses.
//!
//! Guarantees on termination: groups exact; every capacity row exceeded by
//! less than `Δ` (once a row goes inactive its remaining floating mass is
//! `≤ Δ` and each remaining variable moves by `< 1`).

use fss_linalg::{kernel_vector, Matrix};

use crate::problem::{RoundingOutcome, RoundingProblem};

const TOL: f64 = 1e-9;

/// Run the kernel walk from the fractional point `x0` (must satisfy all
/// group rows exactly; capacity feasibility of `x0` is what the final
/// violation bound is measured against). Panics on structural violations.
pub fn beck_fiala(problem: &RoundingProblem, x0: &[f64]) -> RoundingOutcome {
    problem.assert_valid();
    assert_eq!(x0.len(), problem.num_vars, "one value per variable");
    let mut x: Vec<f64> = x0.iter().map(|&v| v.clamp(0.0, 1.0)).collect();
    for (gi, group) in problem.groups.iter().enumerate() {
        let s: f64 = group.iter().map(|&v| x[v]).sum();
        assert!(
            (s - 1.0).abs() < 1e-6,
            "group {gi} sums to {s}, expected 1 (supply an LP solution)"
        );
    }

    let delta = 2.0 * problem.max_column_mass();

    loop {
        // Floating variables.
        let floating: Vec<usize> = (0..problem.num_vars)
            .filter(|&j| x[j] > TOL && x[j] < 1.0 - TOL)
            .collect();
        if floating.is_empty() {
            break;
        }
        let col_of: std::collections::HashMap<usize, usize> =
            floating.iter().enumerate().map(|(i, &j)| (j, i)).collect();

        // Active rows.
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
        for group in &problem.groups {
            let terms: Vec<(usize, f64)> = group
                .iter()
                .filter_map(|&v| col_of.get(&v).map(|&c| (c, 1.0)))
                .collect();
            if !terms.is_empty() {
                debug_assert!(
                    terms.len() >= 2,
                    "group with a single floating var contradicts integral sum"
                );
                rows.push(terms);
            }
        }
        for (terms, _) in &problem.capacities {
            let mut mass = 0.0;
            let mut row: Vec<(usize, f64)> = Vec::new();
            for &(v, c) in terms {
                if let Some(&col) = col_of.get(&v) {
                    mass += c;
                    row.push((col, c));
                }
            }
            if mass > delta {
                rows.push(row);
            }
        }
        debug_assert!(
            rows.len() < floating.len(),
            "counting argument violated: {} active rows, {} floating vars",
            rows.len(),
            floating.len()
        );

        // Kernel direction restricted to floating columns.
        let mut a = Matrix::zeros(rows.len(), floating.len());
        for (r, terms) in rows.iter().enumerate() {
            for &(c, coef) in terms {
                a[(r, c)] += coef;
            }
        }
        let d = kernel_vector(&a, 1e-10).expect("kernel must exist: active rows < floating vars");

        // Walk distance: first floating variable to hit a bound, in the +d
        // direction (d is nonzero, so some step is finite and positive).
        let mut t = f64::INFINITY;
        for (i, &j) in floating.iter().enumerate() {
            if d[i] > TOL {
                t = t.min((1.0 - x[j]) / d[i]);
            } else if d[i] < -TOL {
                t = t.min(x[j] / (-d[i]));
            }
        }
        assert!(t.is_finite() && t >= 0.0, "kernel direction admits no step");
        for (i, &j) in floating.iter().enumerate() {
            x[j] = (x[j] + t * d[i]).clamp(0.0, 1.0);
            // Snap near-integral values so progress is guaranteed.
            if x[j] < TOL {
                x[j] = 0.0;
            } else if x[j] > 1.0 - TOL {
                x[j] = 1.0;
            }
        }
    }

    extract(problem, &x)
}

/// Read off the chosen variable per group from an integral point.
pub(crate) fn extract(problem: &RoundingProblem, x: &[f64]) -> RoundingOutcome {
    let chosen: Vec<usize> = problem
        .groups
        .iter()
        .enumerate()
        .map(|(gi, group)| {
            let ones: Vec<usize> = group.iter().copied().filter(|&v| x[v] > 0.5).collect();
            assert_eq!(
                ones.len(),
                1,
                "group {gi} rounded to {} ones, expected exactly 1",
                ones.len()
            );
            ones[0]
        })
        .collect();
    let max_violation = problem.max_violation(&chosen);
    RoundingOutcome {
        chosen,
        max_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_integral_input_is_passthrough() {
        let p = RoundingProblem {
            num_vars: 4,
            groups: vec![vec![0, 1], vec![2, 3]],
            capacities: vec![(vec![(0, 1.0), (2, 1.0)], 1.0)],
        };
        let out = beck_fiala(&p, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(out.chosen, vec![0, 3]);
        assert_eq!(out.max_violation, 0.0);
    }

    #[test]
    fn half_half_groups_round_consistently() {
        // Two flows, two rounds, each capacity 1 per round: the fractional
        // point x = 1/2 everywhere is feasible; rounding must keep groups
        // exact and violation < delta = 2 * max_col = 2 * 2 = 4.
        let p = RoundingProblem {
            num_vars: 4,
            groups: vec![vec![0, 1], vec![2, 3]],
            capacities: vec![
                (vec![(0, 1.0), (2, 1.0)], 1.0), // round 0
                (vec![(1, 1.0), (3, 1.0)], 1.0), // round 1
            ],
        };
        let out = beck_fiala(&p, &[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(out.chosen.len(), 2);
        assert!(out.max_violation < 4.0);
    }

    #[test]
    fn violation_strictly_below_delta_on_random_problems() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..40 {
            let groups_n = rng.gen_range(1..8);
            let opts = rng.gen_range(2..5);
            let mut groups = Vec::new();
            let mut num_vars = 0;
            for _ in 0..groups_n {
                let g: Vec<usize> = (num_vars..num_vars + opts).collect();
                num_vars += opts;
                groups.push(g);
            }
            // Random capacity rows with integer coefficients <= 3.
            let rows_n = rng.gen_range(1..6);
            let mut capacities = Vec::new();
            for _ in 0..rows_n {
                let mut terms = Vec::new();
                for v in 0..num_vars {
                    if rng.gen_bool(0.4) {
                        terms.push((v, f64::from(rng.gen_range(1..=3))));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                // rhs = fractional load of the uniform point, so x0 is
                // feasible and the bound is meaningful.
                let rhs: f64 = terms.iter().map(|&(_, c)| c).sum::<f64>() / opts as f64;
                capacities.push((terms, rhs));
            }
            let p = RoundingProblem {
                num_vars,
                groups,
                capacities,
            };
            let x0 = vec![1.0 / opts as f64; num_vars];
            let delta = 2.0 * p.max_column_mass();
            let out = beck_fiala(&p, &x0);
            assert_eq!(out.chosen.len(), groups_n);
            assert!(
                out.max_violation < delta + 1e-6,
                "violation {} >= delta {delta}",
                out.max_violation
            );
        }
    }

    #[test]
    #[should_panic(expected = "expected 1")]
    fn group_sum_must_be_one() {
        let p = RoundingProblem {
            num_vars: 2,
            groups: vec![vec![0, 1]],
            capacities: vec![],
        };
        let _ = beck_fiala(&p, &[0.2, 0.2]);
    }

    #[test]
    fn no_capacities_still_rounds_groups() {
        let p = RoundingProblem {
            num_vars: 3,
            groups: vec![vec![0, 1, 2]],
            capacities: vec![],
        };
        let out = beck_fiala(&p, &[0.3, 0.3, 0.4]);
        assert_eq!(out.chosen.len(), 1);
        assert_eq!(out.max_violation, 0.0);
    }
}
