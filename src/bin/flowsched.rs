//! `flowsched` — command-line front end for the flow-switch toolkit.
//!
//! Subcommands:
//!
//! ```text
//! flowsched gen      --m 8 --flows 40 --max-release 10 --seed 7 -o inst.json
//! flowsched validate -i inst.json -s sched.json [--augment D]
//! flowsched solve    -i inst.json --objective art --c 2      -o sched.json
//! flowsched solve    -i inst.json --objective mrt            -o sched.json
//! flowsched online   -i inst.json --policy maxweight         -o sched.json
//! flowsched stats    -i inst.json -s sched.json
//! flowsched stream   --m 150 --rate 600 --rounds 100 --mode incremental
//! flowsched stream   --scenario spec.json --mode maxcard --metrics
//! flowsched trace    --m 8 --rate 6 --rounds 12 --seed 7 -o trace.jsonl
//! flowsched trace    gen --m 64 --rate 48 --rounds 100000 -o giant.jsonl
//! flowsched trace    convert examples/sample_coflow.csv --ports 32 -o coflow.jsonl
//! flowsched trace    morph coflow.jsonl --scale-rate 2.0 --skew zipf:1.2 -o hot.jsonl
//! flowsched trace    stats hot.jsonl
//! flowsched trace    split giant.jsonl --shards 4 -o giant
//! flowsched bench    --smoke --filter fig6 --jobs 4 --out target/experiments
//! flowsched bench    --trace examples/sample_trace.jsonl
//! flowsched bench    --trace giant.jsonl --stream
//! flowsched bench    --smoke --progress
//! flowsched bench    --diff OLD.json NEW.json --tolerance 30
//! flowsched telemetry dump -i target/experiments/BENCH_fig6.json
//! flowsched serve    --listen 127.0.0.1:7070 --metrics-listen 127.0.0.1:9090
//! flowsched serve    --soak --m 64 --rate 260 --rounds 4000
//! ```
//!
//! Instances and schedules are the serde JSON forms of
//! [`fss_core::Instance`] and [`fss_core::Schedule`]; scenarios are
//! [`fss_sim::ScenarioSpec`] files and traces the JSONL
//! [`fss_sim::ArrivalTrace`] format.

use std::process::ExitCode;

use flow_switch::engine::{BuiltinPolicy, EngineMode};
use flow_switch::offline::art::solve_art;
use flow_switch::offline::mrt::{solve_mrt, RoundingEngine};

use flow_switch::prelude::*;
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("flowsched: {msg}");
            // The hidden worker subcommand talks to a coordinator, not
            // a human: its failures go to the coordinator's log, where
            // the usage text is pure noise.
            if args.first().map(String::as_str) != Some("bench-worker") {
                eprintln!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  flowsched gen      --m M [--flows N] [--max-release R] [--seed S] [--cap C] [--max-demand D] -o FILE
  flowsched validate -i INSTANCE -s SCHEDULE [--augment D]
  flowsched solve    -i INSTANCE --objective art|mrt [--c C] [-o FILE]
  flowsched online   -i INSTANCE --policy maxcard|minrtime|maxweight|fifo [-o FILE]
  flowsched stats    -i INSTANCE -s SCHEDULE
  flowsched stream   [--m M] [--rate R] [--rounds T] [--seed S] [--scenario SPEC.json]
                     [--mode incremental|maxcard|minrtime|maxweight|fifo] [--metrics]
                     [--cores N] [--flight-trace OUT.json [--stall-budget-ms MS]]
  flowsched trace    (--scenario SPEC.json | [--m M] [--rate R] [--rounds T] [--seed S]) -o FILE
  flowsched trace    gen [--m M] [--rate R] [--rounds T] [--seed S] -o FILE.jsonl
  flowsched trace    convert CSV [--ports N] [--quantum-bytes B] [--ms-per-round MS] -o FILE.jsonl
  flowsched trace    morph IN.jsonl [--scale-rate F] [--dilate F] [--skew zipf:THETA[:SEED]]
                     [--fold M] [--window FROM:TO] [--truncate N] -o OUT.jsonl
  flowsched trace    stats FILE.jsonl
  flowsched trace    split IN.jsonl [--shards N] -o PREFIX
  flowsched bench    [--filter ID] [--trace FILE.jsonl [--stream]] [--smoke|--paper]
                     [--jobs N] [--cores N] [--out DIR] [--trials N] [--list]
                     [--workers N] [--resume] [--progress] [--flight-trace OUT.json]
  flowsched bench    --diff OLD.json NEW.json [--tolerance PCT] [--strict-metrics]
  flowsched telemetry dump -i ARTIFACT.json|BENCH_cells.jsonl [-o FILE]
  flowsched flight   export SPOOL.jsonl -o OUT.json
  flowsched flight   stats SPOOL.jsonl [--top K]
  flowsched flight   check TRACE.json
  flowsched serve    [--ports M] [--policy maxcard|minrtime|maxweight|fifo]
                     [--queue-cap N] [--admission pause|drop] [--scenario SPEC.json]
                     [--listen ADDR [--metrics-listen ADDR]] [--cores N]
                     [--flight-trace OUT.json [--stall-budget-ms MS]]
  flowsched serve    --soak [--disconnect-after N] [--queue-cap N]
                     (--scenario SPEC.json | [--m M] [--rate R] [--rounds T] [--seed S])
  flowsched serve    --replay TRACE.jsonl --connect ADDR [--skip N] [--take N] [--finish]
  flowsched serve    --reference (--scenario SPEC.json | [--m M] [--rate R] [--rounds T])

stream drives a workload through the event-driven engine without
materializing an instance and reports aggregate response statistics.
The workload is a Poisson stream (R mean arrivals/round on an MxM unit
switch for T rounds) or, with --scenario, any ScenarioSpec JSON file
(Poisson or trace-replay arrivals, optional failure plan).

trace freezes a workload into an arrival-trace JSONL file for exact
replay: either the given scenario file or a Poisson workload described
by --m/--rate/--rounds/--seed. The trace sub-subcommands are streaming
tools (one reader->writer pass, O(1) memory in the trace length, so
they compose on traces far larger than RAM): `trace gen` streams a
seeded Poisson workload straight to disk; `trace convert` turns a
coflow CSV (coflow_id,release_ms,mappers,reducers,bytes with
`|`-separated port lists) into an arrival trace by folding ports onto
an N-port switch and quantizing bytes into unit flows; `trace morph`
rewrites a trace through transforms applied in flag order (time
compression/dilation, seeded zipf port skew, port folding, round
windows, truncation); `trace stats` prints a one-pass summary (flows,
horizon, per-round burstiness, hotspot ports); `trace split` fans one
giant trace out into N release-sorted sub-traces PREFIX.<k>.jsonl,
round-robin by port shard (src % N, the pipelined engine's rule).

--cores N runs the round loop through the pipelined multi-core engine
(stream/serve: dataflow stages over port-sharded queues; bench: trials
fanned across threads). Schedules and metrics are bit-identical at
every cores value — parallelism changes wall time, never results.

bench runs the experiment registry through the parallel orchestrator:
cells execute on a work-stealing thread pool (--jobs caps the workers),
per-cell results stream to <out>/BENCH_cells.jsonl, and each experiment
writes an aggregated BENCH_<id>.json artifact. --filter selects by exact
id or substring; --trace FILE replays an arrival trace through every
policy as the trace_replay experiment (alone unless --filter is also
given; with --stream the cells replay the file through the chunked
streaming source at O(1) memory instead of loading it, so giant traces
fit); --smoke uses CI-sized grids and --paper the paper-exact grids
and trial counts; --list prints the registry with per-tier cell counts
(for shard planning) and exits. --diff compares two BENCH artifacts of
the same experiment and exits nonzero when a cell vanished or slowed
down more than PCT percent (default 30) in flows/s; --strict-metrics
additionally fails on any metric value drift (use with --tolerance 100
to differential-check a sharded run against a single-process run:
metric values are seed-deterministic, timing is not).

With --workers N the run is distributed: a coordinator shards the cell
list across N child worker processes, checkpoints every finished cell
to <out>/BENCH_cells.jsonl, reassigns the cells of a crashed worker to
the survivors, and merges the results into the same artifacts a
single-process run writes (cell-for-cell identical modulo timing).
--resume replays an existing checkpoint stream first and executes only
the missing cells — interrupted paper-scale runs pick up where they
stopped instead of restarting.

Observability: stream --metrics records round-loop telemetry (per-stage
wall time, decision-latency quantiles, match/augmentation counters) and
appends it in Prometheus text format; bench --progress records the same
per cell into the BENCH artifacts (schema v3 `telemetry` field) and
prints a live progress line. Telemetry observes, never steers: schedules
and metrics are bit-identical with or without it. telemetry dump merges
the per-cell snapshots back out of an artifact (or a cells.jsonl
stream) as Prometheus text for scraping or ad-hoc inspection.

serve runs the live scheduler: JSONL arrival events (the arrival-trace
line schema, so `flowsched trace` output pipes straight in) stream in
over stdin or a TCP socket (--listen), dispatch decisions stream back
as JSONL, and a Prometheus /metrics endpoint (--metrics-listen) exposes
flows/s, queue depth, decision-latency p50/p99, and admission counters.
The ingest queue is bounded (--queue-cap): when it fills, --admission
pause blocks the producer losslessly (Paused/Resumed lines) and
--admission drop sheds with explicit Dropped lines — never silently.
--scenario supplies the port count and an injected failure plan (its
arrivals are ignored; arrivals come over the wire). A client that
disconnects mid-session can reconnect: buffered lines flush in order.
serve --soak runs the built-in soak harness (a real socket server, one
mid-run disconnect/reconnect, a metrics scrape, and a strict diff of
the live schedule against the single-process reference); serve --replay
plays a trace file against a running server as a client; serve
--reference prints the single-process reference dispatch stream for the
same workload (for external diffing).";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    // `bench --diff OLD NEW` takes two positional paths; route it before
    // the flag parser (which expects key/value pairs only).
    if cmd == "bench" && args.iter().any(|a| a == "--diff") {
        return bench_diff(&args[1..]);
    }
    // `telemetry dump ...` has a positional sub-subcommand; route it
    // before the key/value flag parser too.
    if cmd == "telemetry" {
        return telemetry_cmd(&args[1..]);
    }
    // `flight export|stats|check ...` likewise take positionals.
    if cmd == "flight" {
        return flight_cmd(&args[1..]);
    }
    // `trace convert|morph|gen|stats ...` likewise take positionals;
    // the legacy scenario dump (`trace --m ... -o FILE`) still routes
    // through the flag parser below.
    if cmd == "trace" {
        if let Some(sub @ ("convert" | "morph" | "gen" | "stats" | "split")) =
            args.get(1).map(String::as_str)
        {
            return trace_sub(sub, &args[2..]);
        }
    }
    let opts = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "gen" => gen(&opts),
        "validate" => validate_cmd(&opts),
        "solve" => solve(&opts),
        "online" => online(&opts),
        "stats" => stats(&opts),
        "stream" => stream(&opts),
        "trace" => trace(&opts),
        "bench" => bench(&opts),
        "serve" => serve_cmd(&opts),
        // Hidden: the worker end of `bench --workers N`. Spawned by the
        // coordinator with the protocol on stdin/stdout; not for
        // interactive use.
        "bench-worker" => fss_dist::worker_main(),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
        }
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }
}

/// Flags that take no value (present = "true").
const BOOL_FLAGS: [&str; 10] = [
    "smoke",
    "paper",
    "list",
    "resume",
    "progress",
    "metrics",
    "soak",
    "reference",
    "finish",
    "stream",
];

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .or_else(|| a.strip_prefix('-'))
            .ok_or_else(|| format!("expected a flag, found '{a}'"))?;
        if BOOL_FLAGS.contains(&key) {
            flags.push((key.to_string(), "true".to_string()));
            continue;
        }
        let val = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.push((key.to_string(), val.clone()));
    }
    Ok(Flags(flags))
}

fn read_instance(flags: &Flags) -> Result<Instance, String> {
    let path = flags.required("i")?;
    let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("parse {path}: {e}"))
}

fn read_schedule(flags: &Flags) -> Result<Schedule, String> {
    let path = flags.required("s")?;
    let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("parse {path}: {e}"))
}

fn write_json<T: serde::Serialize>(flags: &Flags, value: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).map_err(|e| format!("serialize: {e}"))?;
    match flags.get("o") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn gen(flags: &Flags) -> Result<(), String> {
    let m: usize = flags.parsed("m", 8)?;
    let n: usize = flags.parsed("flows", 4 * m)?;
    let max_release: u64 = flags.parsed("max-release", 10)?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let cap: u32 = flags.parsed("cap", 1)?;
    let max_demand: u32 = flags.parsed("max-demand", 1)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let inst = fss_core::gen::random_instance(
        &mut rng,
        &fss_core::gen::GenParams {
            m,
            m_out: m,
            cap,
            n,
            max_demand,
            max_release,
        },
    );
    write_json(flags, &inst)
}

fn validate_cmd(flags: &Flags) -> Result<(), String> {
    let inst = read_instance(flags)?;
    let sched = read_schedule(flags)?;
    let delta: u32 = flags.parsed("augment", 0)?;
    let caps = inst.switch.augmented(delta);
    match validate::check(&inst, &sched, &caps) {
        Ok(()) => {
            println!("valid (augmentation +{delta})");
            Ok(())
        }
        Err(e) => Err(format!("invalid schedule: {e}")),
    }
}

fn solve(flags: &Flags) -> Result<(), String> {
    let inst = read_instance(flags)?;
    match flags.required("objective")? {
        "art" => {
            let c: u32 = flags.parsed("c", 1)?;
            if !inst.is_unit_demand() {
                return Err("FS-ART (Theorem 1) requires unit demands".into());
            }
            let res = solve_art(&inst, c);
            eprintln!(
                "FS-ART: total response {} (avg {:.2}) on a {}x capacity switch, window h = {}",
                res.metrics.total_response,
                res.metrics.mean_response,
                res.capacity_factor,
                res.window
            );
            write_json(flags, &res.schedule)
        }
        "mrt" => {
            let res = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation)
                .map_err(|e| e.to_string())?;
            eprintln!(
                "FS-MRT: rho* = {} with +{} port capacity (2*dmax-1 = {})",
                res.rho_star,
                res.augmentation,
                2 * inst.dmax().max(1) - 1
            );
            write_json(flags, &res.schedule)
        }
        other => Err(format!("unknown objective '{other}' (use art|mrt)")),
    }
}

fn online(flags: &Flags) -> Result<(), String> {
    let inst = read_instance(flags)?;
    // Routed through the event-driven engine; schedules are
    // round-for-round identical to the legacy loop's.
    let sched = match flags.required("policy")? {
        "maxcard" => flow_switch::engine::run_builtin(&inst, BuiltinPolicy::MaxCard),
        "minrtime" => flow_switch::engine::run_builtin(&inst, BuiltinPolicy::MinRTime),
        "maxweight" => flow_switch::engine::run_builtin(&inst, BuiltinPolicy::MaxWeight),
        "fifo" => flow_switch::engine::run_builtin(&inst, BuiltinPolicy::FifoGreedy),
        other => return Err(format!("unknown policy '{other}'")),
    };
    let m = metrics::evaluate(&inst, &sched);
    eprintln!(
        "online: total {} (avg {:.2}), max {}",
        m.total_response, m.mean_response, m.max_response
    );
    write_json(flags, &sched)
}

fn stats(flags: &Flags) -> Result<(), String> {
    let inst = read_instance(flags)?;
    let sched = read_schedule(flags)?;
    if inst.n() != sched.len() {
        return Err(format!(
            "schedule covers {} flows, instance has {}",
            sched.len(),
            inst.n()
        ));
    }
    let m = metrics::evaluate(&inst, &sched);
    let p = fss_sim::response_percentiles(&inst, &sched);
    println!("flows            : {}", m.n);
    println!("makespan         : {}", m.makespan);
    println!("total response   : {}", m.total_response);
    println!("mean response    : {:.3}", m.mean_response);
    println!("p50 / p95 / p99  : {} / {} / {}", p.p50, p.p95, p.p99);
    println!("max response     : {}", m.max_response);
    let needed = validate::required_augmentation(&inst, &sched).map_err(|e| format!("{e}"))?;
    println!("needed augment   : +{needed}");
    Ok(())
}

/// `bench --diff OLD NEW [--tolerance PCT]`: compare two BENCH artifacts
/// and fail (exit nonzero) on regressions.
fn bench_diff(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut tolerance = fss_bench::DEFAULT_TOLERANCE_PCT;
    let mut strict_metrics = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--diff" => {}
            "--strict-metrics" => strict_metrics = true,
            "--tolerance" | "--tol" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                tolerance = v
                    .parse()
                    .map_err(|_| format!("bad value for --tolerance: {v}"))?;
                if !(0.0..=100.0).contains(&tolerance) {
                    return Err(format!("--tolerance must be in [0, 100], got {tolerance}"));
                }
            }
            path if !path.starts_with('-') => paths.push(path),
            other => return Err(format!("unknown bench --diff flag '{other}'")),
        }
    }
    let [old, new] = paths.as_slice() else {
        return Err("bench --diff needs exactly two artifact paths (OLD.json NEW.json)".into());
    };
    let diff = fss_bench::diff_artifacts_opts(
        std::path::Path::new(old),
        std::path::Path::new(new),
        tolerance,
        strict_metrics,
    )?;
    print!("{}", fss_bench::render_diff(&diff));
    if diff.passes() {
        Ok(())
    } else {
        Err(format!(
            "{} regression(s) against {old} (tolerance {tolerance}%)",
            diff.regressions()
        ))
    }
}

fn bench(flags: &Flags) -> Result<(), String> {
    if flags.get("list").is_some() {
        println!("registered experiments (cells per tier, for shard planning):");
        println!(
            "  {:<24} {:>6} {:>6} {:>6}  description",
            "id", "smoke", "full", "paper"
        );
        let counts = fss_bench::registry_cell_counts();
        for &(id, description, [smoke, full, paper]) in &counts {
            println!("  {id:<24} {smoke:>6} {full:>6} {paper:>6}  {description}");
        }
        let total = |i: usize| counts.iter().map(|&(_, _, c)| c[i]).sum::<usize>();
        println!(
            "  {:<24} {:>6} {:>6} {:>6}  (bench --workers N shards these across processes)",
            "total",
            total(0),
            total(1),
            total(2)
        );
        return Ok(());
    }
    let opts = fss_bench::BenchOptions {
        filter: flags.get("filter").map(str::to_string),
        smoke: flags.get("smoke").is_some(),
        paper: flags.get("paper").is_some(),
        jobs: flags.parsed("jobs", 0usize)?,
        out_dir: flags
            .get("out")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(fss_bench::out_dir),
        trials: match flags.get("trials") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("bad value for --trials: {v}"))?,
            ),
        },
        trace: flags.get("trace").map(std::path::PathBuf::from),
        progress: flags.get("progress").is_some(),
        stream_trace: flags.get("stream").is_some(),
        cores: flags.parsed("cores", 1usize)?,
        flight_trace: flags.get("flight-trace").map(std::path::PathBuf::from),
    };
    if opts.stream_trace && opts.trace.is_none() {
        return Err("--stream only applies to --trace replays".into());
    }
    let workers: usize = flags.parsed("workers", 0usize)?;
    let resume = flags.get("resume").is_some();
    let started = std::time::Instant::now();
    let (reports, dist_note) = if workers > 0 || resume {
        let summary = bench_dist(&opts, workers.max(1), resume)?;
        if let Some(trace) = &summary.flight_trace {
            println!(
                "flight trace: {} ({} span(s), {} dropped, merged from worker spools)",
                trace.display(),
                summary.flight_spans,
                summary.flight_dropped,
            );
        }
        let note = format!(
            "dist: {} {}-tier cell(s) = {} from checkpoint + {} executed on {} worker(s), \
             {} reassigned, {} worker(s) lost",
            summary.total_cells,
            fss_bench::scale_of(&opts).tier_name(),
            summary.skipped,
            summary.executed,
            summary.workers_spawned,
            summary.reassigned,
            summary.workers_lost,
        );
        (summary.reports, Some(note))
    } else {
        (fss_bench::run_bench(&opts)?, None)
    };
    fss_bench::print_reports(&reports, &opts.out_dir);
    let cells: usize = reports.iter().map(|r| r.cells.len()).sum();
    let flows: u64 = reports.iter().map(|r| r.total_flows()).sum();
    println!(
        "bench: {} experiment(s), {cells} cells, {flows} work units in {:.2}s on {} worker(s)",
        reports.len(),
        started.elapsed().as_secs_f64(),
        reports.first().map_or(0, |r| r.jobs),
    );
    if let Some(note) = dist_note {
        println!("{note}");
    }
    println!(
        "cell stream: {}",
        opts.out_dir.join(fss_bench::CELLS_STREAM_NAME).display()
    );
    Ok(())
}

/// Run `bench` through the distributed coordinator: this binary
/// re-invoked as `bench-worker` is the worker command.
fn bench_dist(
    opts: &fss_bench::BenchOptions,
    workers: usize,
    resume: bool,
) -> Result<fss_dist::DistSummary, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate own binary for worker spawning: {e}"))?;
    let exe = exe
        .to_str()
        .ok_or("own binary path is not valid UTF-8")?
        .to_string();
    // Fault injection for CI's kill-a-worker-mid-run job and the
    // integration tests: FSS_DIST_FAIL_WORKER=<index>:<results> crashes
    // that worker (no goodbye) after that many results.
    let fail_worker = match std::env::var("FSS_DIST_FAIL_WORKER") {
        Err(_) => None,
        Ok(v) => {
            let (idx, n) = v
                .split_once(':')
                .ok_or("FSS_DIST_FAIL_WORKER must be <worker-index>:<results>")?;
            Some((
                idx.parse::<usize>()
                    .map_err(|_| format!("bad worker index in FSS_DIST_FAIL_WORKER: {idx}"))?,
                n.parse::<u64>()
                    .map_err(|_| format!("bad result count in FSS_DIST_FAIL_WORKER: {n}"))?,
            ))
        }
    };
    fss_dist::run_dist(&fss_dist::DistOptions {
        bench: opts.clone(),
        workers,
        resume,
        worker_cmd: vec![exe, "bench-worker".to_string()],
        fail_worker,
        heartbeat_ms: None,
        slow_worker: None,
        flight_trace: opts.flight_trace.clone(),
    })
}

/// Build the Poisson `ScenarioSpec` described by `--m/--rate/--rounds/
/// --seed` (the defaults mirror the pre-scenario `stream` flags).
fn poisson_spec_from_flags(flags: &Flags) -> Result<fss_sim::ScenarioSpec, String> {
    let m: usize = flags.parsed("m", 150)?;
    let rate: f64 = flags.parsed("rate", m as f64)?;
    let rounds: u64 = flags.parsed("rounds", 100)?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let spec = fss_sim::ScenarioSpec::poisson(m, rate, rounds, seed);
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

/// Load `--scenario FILE` if given, else the Poisson spec from the flags.
fn spec_from_flags(flags: &Flags) -> Result<fss_sim::ScenarioSpec, String> {
    match flags.get("scenario") {
        Some(path) => fss_sim::ScenarioSpec::load(path).map_err(|e| e.to_string()),
        None => poisson_spec_from_flags(flags),
    }
}

fn trace(flags: &Flags) -> Result<(), String> {
    let spec = spec_from_flags(flags)?;
    let out = flags.required("o")?;
    let trace = spec.dump_trace().map_err(|e| e.to_string())?;
    trace.save(out).map_err(|e| e.to_string())?;
    let (n, ports, horizon) = (trace.len(), trace.ports, trace.horizon());
    eprintln!("wrote {out}: {n} arrivals on a {ports}x{ports} switch over {horizon} rounds");
    Ok(())
}

/// Dispatch the `trace` sub-subcommands backed by `fss-trace`'s
/// streaming tools — all of them single reader→writer passes, so they
/// work on traces far larger than RAM.
fn trace_sub(sub: &str, args: &[String]) -> Result<(), String> {
    match sub {
        "convert" => trace_convert(args),
        "morph" => trace_morph(args),
        "gen" => trace_gen(args),
        "stats" => trace_stats(args),
        "split" => trace_split(args),
        other => Err(format!("unknown trace subcommand '{other}'")),
    }
}

/// Split one leading positional path off `args`.
fn positional<'a>(args: &'a [String], what: &str) -> Result<(&'a str, &'a [String]), String> {
    match args.first() {
        Some(p) if !p.starts_with('-') => Ok((p.as_str(), &args[1..])),
        _ => Err(format!("missing {what}")),
    }
}

fn trace_summary_line(out: &str, s: &fss_trace::TraceSummary) {
    eprintln!(
        "wrote {out}: {} arrivals on a {}x{} switch over {} rounds",
        s.flows, s.ports, s.ports, s.horizon
    );
}

/// Cite `path` in a trace error — except I/O errors, which carry their
/// own path (the morph/convert output file may be the one that failed).
fn trace_err(path: &str, e: fss_trace::TraceFileError) -> String {
    match e {
        e @ fss_trace::TraceFileError::Io { .. } => e.to_string(),
        e => format!("{path}: {e}"),
    }
}

/// `trace convert CSV -o FILE.jsonl [--ports N] [--quantum-bytes B]
/// [--ms-per-round MS]`: coflow CSV → arrival-trace JSONL.
fn trace_convert(args: &[String]) -> Result<(), String> {
    let (csv, rest) = positional(args, "CSV path (trace convert FILE.csv -o FILE.jsonl)")?;
    let flags = parse_flags(rest)?;
    let out = flags.required("o")?;
    let d = fss_trace::ConvertOptions::default();
    let opts = fss_trace::ConvertOptions {
        ports: flags.parsed("ports", d.ports)?,
        quantum_bytes: flags.parsed("quantum-bytes", d.quantum_bytes)?,
        ms_per_round: flags.parsed("ms-per-round", d.ms_per_round)?,
    };
    let s = fss_trace::convert_file(csv, out, opts).map_err(|e| trace_err(csv, e))?;
    trace_summary_line(out, &s);
    Ok(())
}

/// `trace morph IN.jsonl -o OUT.jsonl --<transform> ...`: apply the
/// transforms **in flag order** (`--fold 32 --skew zipf:1.2` skews over
/// the folded port range; the reverse order, over the original).
fn trace_morph(args: &[String]) -> Result<(), String> {
    let (input, rest) = positional(args, "trace path (trace morph IN.jsonl -o OUT.jsonl ...)")?;
    let flags = parse_flags(rest)?;
    let out = flags.required("o")?;
    let specs = morph_specs(&flags)?;
    if specs.is_empty() {
        return Err("trace morph needs at least one transform \
             (--scale-rate, --dilate, --skew, --fold, --window, --truncate)"
            .into());
    }
    let s = fss_trace::morph_file(input, out, &specs).map_err(|e| trace_err(input, e))?;
    trace_summary_line(out, &s);
    Ok(())
}

/// Parse the morph transforms out of the flag list, preserving order.
fn morph_specs(flags: &Flags) -> Result<Vec<fss_trace::MorphSpec>, String> {
    use fss_trace::MorphSpec;
    let mut specs = Vec::new();
    for (key, val) in &flags.0 {
        let bad = || format!("bad value for --{key}: {val}");
        let spec = match key.as_str() {
            "o" => continue,
            "scale-rate" => MorphSpec::ScaleRate(val.parse().map_err(|_| bad())?),
            "dilate" => MorphSpec::Dilate(val.parse().map_err(|_| bad())?),
            "fold" => MorphSpec::Fold(val.parse().map_err(|_| bad())?),
            "truncate" => MorphSpec::Truncate(val.parse().map_err(|_| bad())?),
            "skew" => {
                let spec = val
                    .strip_prefix("zipf:")
                    .ok_or_else(|| format!("--skew takes zipf:THETA[:SEED], got '{val}'"))?;
                let (theta, seed) = match spec.split_once(':') {
                    None => (spec.parse().map_err(|_| bad())?, 42),
                    Some((t, s)) => (t.parse().map_err(|_| bad())?, s.parse().map_err(|_| bad())?),
                };
                MorphSpec::Skew { theta, seed }
            }
            "window" => {
                let (from, to) = val
                    .split_once(':')
                    .ok_or_else(|| format!("--window takes FROM:TO (rounds), got '{val}'"))?;
                MorphSpec::Window {
                    from: from.parse().map_err(|_| bad())?,
                    to: to.parse().map_err(|_| bad())?,
                }
            }
            other => return Err(format!("unknown trace morph flag --{other}")),
        };
        specs.push(spec);
    }
    Ok(specs)
}

/// `trace gen -o FILE [--m M] [--rate R] [--rounds T] [--seed S]`:
/// stream a seeded Poisson workload straight to disk (no in-memory
/// trace, so paper-scale and larger files are fine).
fn trace_gen(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let out = flags.required("o")?;
    let m: usize = flags.parsed("m", 150)?;
    let rate: f64 = flags.parsed("rate", m as f64)?;
    let rounds: u64 = flags.parsed("rounds", 100)?;
    let seed: u64 = flags.parsed("seed", 42)?;
    let s =
        fss_trace::write_poisson_trace(out, m, rate, rounds, seed).map_err(|e| e.to_string())?;
    trace_summary_line(out, &s);
    Ok(())
}

/// `trace split IN.jsonl --shards N -o PREFIX`: fan one giant trace out
/// into `N` release-sorted sub-traces `PREFIX.<k>.jsonl`, round-robin
/// by port shard (`src % N` — the pipelined engine's sharding rule).
/// One streaming pass, O(chunk) memory.
fn trace_split(args: &[String]) -> Result<(), String> {
    let (input, rest) = positional(
        args,
        "trace path (trace split IN.jsonl --shards N -o PREFIX)",
    )?;
    let flags = parse_flags(rest)?;
    let prefix = flags.required("o")?;
    let shards: usize = flags.parsed("shards", 2)?;
    let parts = fss_trace::split_file(input, prefix, shards).map_err(|e| trace_err(input, e))?;
    for (path, s) in &parts {
        trace_summary_line(&path.display().to_string(), s);
    }
    let total: u64 = parts.iter().map(|(_, s)| s.flows).sum();
    eprintln!("split {input} into {shards} shards ({total} arrivals total)");
    Ok(())
}

/// `trace stats FILE.jsonl`: one streaming pass, O(ports) memory.
fn trace_stats(args: &[String]) -> Result<(), String> {
    let (path, rest) = positional(args, "trace path (trace stats FILE.jsonl)")?;
    if let Some(extra) = rest.first() {
        return Err(format!(
            "trace stats takes exactly one trace path (unexpected '{extra}')"
        ));
    }
    let st = fss_trace::scan_stats(path).map_err(|e| trace_err(path, e))?;
    let s = &st.summary;
    println!("trace            : {path}");
    println!("switch           : {}x{}", s.ports, s.ports);
    println!("flows            : {}", s.flows);
    println!("horizon          : {} rounds", s.horizon);
    println!("active rounds    : {}", st.active_rounds);
    println!("mean rate        : {:.3} arrivals/round", st.mean_rate());
    println!(
        "round burst      : p50 {} / p90 {} / p99 {} / max {}",
        st.per_round.p50(),
        st.per_round.p90(),
        st.per_round.p99(),
        st.per_round.max()
    );
    match (st.busiest_src(), st.busiest_dst()) {
        (Some((sp, sn)), Some((dp, dn))) => {
            println!("busiest src      : port {sp} ({sn} arrivals)");
            println!("busiest dst      : port {dp} ({dn} arrivals)");
        }
        _ => println!("busiest ports    : (no arrivals)"),
    }
    Ok(())
}

fn stream(flags: &Flags) -> Result<(), String> {
    let spec = spec_from_flags(flags)?;
    if !spec.is_bounded() {
        return Err("scenario is unbounded; give poisson arrivals a horizon".into());
    }
    let mode = match flags.get("mode").unwrap_or("incremental") {
        "incremental" => EngineMode::Incremental,
        name => match BuiltinPolicy::parse(name) {
            Some(b) => EngineMode::Exact(b),
            None => return Err(format!("unknown mode '{name}'")),
        },
    };
    let metrics = flags.get("metrics").is_some();
    let cores: usize = flags.parsed("cores", 1usize)?;
    let mut tele = if metrics {
        flow_switch::engine::EngineTelemetry::enabled()
    } else {
        flow_switch::engine::EngineTelemetry::disabled()
    };
    // --flight-trace OUT.json: record stage/channel spans into
    // OUT.json.spool.jsonl while the engine runs, arm the stall
    // watchdog, and export the Chrome trace when the run finishes.
    // Tracing observes the run; it never steers it.
    let flight_out = flags.get("flight-trace").map(std::path::PathBuf::from);
    let flight = match &flight_out {
        None => None,
        Some(out) => {
            let mut spool = out.as_os_str().to_os_string();
            spool.push(".spool.jsonl");
            let spool = std::path::PathBuf::from(spool);
            let recorder = fss_flight::FlightRecorder::new();
            let sink = fss_flight::TraceSink::create(
                &recorder,
                &spool,
                fss_flight::DEFAULT_SPOOL_MAX_EVENTS,
            )
            .map_err(|e| format!("create flight spool {}: {e}", spool.display()))?;
            let mut handle = recorder.handle("driver");
            if let Some(inject) = fss_flight::stall_inject_from_env()? {
                handle.set_stall_inject(inject);
            }
            let budget_ms: u64 = flags.parsed(
                "stall-budget-ms",
                fss_flight::DEFAULT_STALL_BUDGET.as_millis() as u64,
            )?;
            let watchdog = fss_flight::StallWatchdog::spawn(
                &recorder,
                &sink,
                std::time::Duration::from_millis(budget_ms),
                |round| {
                    eprintln!(
                        "[fss-flight] watchdog: round counter stalled at round {round}; \
                         post-mortem spans and channel depths dumped to the spool"
                    )
                },
            );
            tele = tele.with_flight(handle);
            Some((sink, watchdog))
        }
    };
    let start = std::time::Instant::now();
    let (stats, mode_name) = match (&spec.failures, mode) {
        (Some(_), EngineMode::Incremental) => {
            return Err(
                "scenario has a failure plan; pick a policy mode (maxcard|minrtime|maxweight|fifo)"
                    .into(),
            )
        }
        (Some(_), EngineMode::Exact(b)) => {
            let policy = match b {
                BuiltinPolicy::MaxCard => fss_sim::PolicyKind::MaxCard,
                BuiltinPolicy::MinRTime => fss_sim::PolicyKind::MinRTime,
                BuiltinPolicy::MaxWeight => fss_sim::PolicyKind::MaxWeight,
                BuiltinPolicy::FifoGreedy => fss_sim::PolicyKind::FifoGreedy,
            };
            (
                fss_sim::run_scenario_cores(&spec, policy, cores, &mut tele, |_, _, _| {})
                    .map_err(|e| e.to_string())?,
                format!("failures/{}", b.name()),
            )
        }
        (None, mode) => {
            let source = spec.source().map_err(|e| e.to_string())?;
            let mode_name = match mode {
                EngineMode::Incremental => "incremental".to_string(),
                EngineMode::Exact(b) => format!("exact/{}", b.name()),
            };
            (
                flow_switch::engine::run_stream_cores(source, mode, cores, &mut tele, |_, _, _| {}),
                mode_name,
            )
        }
    };
    let elapsed = start.elapsed();
    println!("mode             : {mode_name}");
    if cores > 1 {
        println!("cores            : {cores} (pipelined engine)");
    }
    match &spec.arrivals {
        fss_sim::ArrivalSpec::Poisson { rate } => {
            let (m, rounds, seed) = (spec.ports, spec.horizon.unwrap_or(0), spec.seed);
            println!("switch           : {m}x{m}, Poisson({rate}) x {rounds} rounds, seed {seed}");
        }
        fss_sim::ArrivalSpec::Trace { path, streaming } => {
            let how = if *streaming { " (streaming)" } else { "" };
            println!("workload         : trace replay of {path}{how}")
        }
    }
    println!("flows            : {}", stats.dispatched);
    println!("active rounds    : {}", stats.active_rounds);
    println!("makespan         : {}", stats.makespan);
    println!("mean response    : {:.3}", stats.mean_response());
    println!("max response     : {}", stats.max_response);
    println!("peak queue       : {}", stats.peak_queue);
    println!(
        "wall time        : {:.3} s ({:.0} flows/s)",
        elapsed.as_secs_f64(),
        stats.dispatched as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    if let Some((sink, watchdog)) = flight {
        let stalls = watchdog.finish();
        let summary = sink.finish();
        let spool = fss_flight::read_spool(&summary.path)?;
        let out = flight_out.as_ref().expect("flight implies --flight-trace");
        std::fs::write(out, fss_flight::to_chrome(&spool))
            .map_err(|e| format!("write {}: {e}", out.display()))?;
        println!(
            "flight trace     : {} ({} span(s), {} dropped, {} stall(s); spool {})",
            out.display(),
            summary.events,
            summary.dropped,
            stalls,
            summary.path.display()
        );
    }
    if metrics {
        let snap = tele.snapshot();
        println!();
        println!("# round-loop telemetry (Prometheus text format)");
        print!(
            "{}",
            flow_switch::telemetry::to_prometheus(&snap, &[("source", "stream")])
        );
    }
    Ok(())
}

/// `telemetry dump -i ARTIFACT [-o FILE]`: merge the per-cell telemetry
/// snapshots out of a BENCH artifact (or the snapshot of every cell in
/// a `BENCH_cells.jsonl` stream) and emit the run-level merge in
/// Prometheus text format.
fn telemetry_cmd(args: &[String]) -> Result<(), String> {
    let sub = args.first().map(String::as_str);
    if sub != Some("dump") {
        return Err(format!(
            "unknown telemetry subcommand {:?} (use: telemetry dump -i ARTIFACT)",
            sub.unwrap_or("<none>")
        ));
    }
    let flags = parse_flags(&args[1..])?;
    let path = flags.required("i")?;
    let cells: Vec<fss_sim::report::BenchCell> = if path.ends_with(".jsonl") {
        fss_sim::report::read_cells_jsonl(std::path::Path::new(path))
            .map_err(|e| format!("read {path}: {e}"))?
            .cells
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        fss_sim::report::bench_report_from_json(&text)
            .map_err(|e| format!("parse {path}: {e}"))?
            .cells
    };
    let total = cells.len();
    let mut merged = flow_switch::telemetry::TelemetrySnapshot::new();
    let mut instrumented = 0usize;
    for cell in &cells {
        if let Some(t) = &cell.telemetry {
            merged.merge(t);
            instrumented += 1;
        }
    }
    if merged.is_empty() {
        return Err(format!(
            "{path}: no telemetry in any of the {total} cell(s) — rerun the bench with --progress"
        ));
    }
    let text = flow_switch::telemetry::to_prometheus(&merged, &[("artifact", path)]);
    eprintln!("{path}: merged telemetry from {instrumented}/{total} instrumented cell(s)");
    match flags.get("o") {
        Some(out) => {
            std::fs::write(out, text).map_err(|e| format!("write {out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Dispatch the `flight` sub-subcommands over `fss-flight` artifacts:
///
/// * `flight export SPOOL.jsonl -o OUT.json` — convert a raw spool
///   (e.g. a crashed worker's post-mortem) into a Chrome trace;
/// * `flight stats SPOOL.jsonl [--top K]` — slowest spans per kind and
///   slowest rounds, straight from the spool, no Perfetto needed;
/// * `flight check TRACE.json` — structurally validate an exported
///   trace (CI uses this so it needs no JSON tooling of its own).
fn flight_cmd(args: &[String]) -> Result<(), String> {
    let usage = "use: flight export SPOOL -o OUT.json | flight stats SPOOL [--top K] | \
                 flight check TRACE.json";
    let (sub, rest) = match args.split_first() {
        Some((sub, rest)) => (sub.as_str(), rest),
        None => return Err(format!("missing flight subcommand ({usage})")),
    };
    let (path, rest) = match rest.split_first() {
        Some((path, rest)) if !path.starts_with('-') => (path.as_str(), rest),
        _ => return Err(format!("flight {sub} needs a file argument ({usage})")),
    };
    let flags = parse_flags(rest)?;
    match sub {
        "export" => {
            let out = flags.required("o")?;
            let spool = fss_flight::read_spool(std::path::Path::new(path))?;
            std::fs::write(out, fss_flight::to_chrome(&spool))
                .map_err(|e| format!("write {out}: {e}"))?;
            eprintln!(
                "wrote {out}: {} span(s) on {} thread(s), {} watchdog dump(s), {} dropped",
                spool.events.len(),
                spool.threads.len(),
                spool.watchdogs.len(),
                spool.dropped + spool.truncated
            );
            Ok(())
        }
        "stats" => {
            let top: usize = flags.parsed("top", 5usize)?;
            let spool = fss_flight::read_spool(std::path::Path::new(path))?;
            let report = fss_flight::stats(&spool, top);
            print!("{}", fss_flight::render_stats(&spool, &report));
            Ok(())
        }
        "check" => {
            let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let check = fss_flight::check_chrome(&json)?;
            println!(
                "{path}: OK — {} span(s) ({} duration events) on {} track(s), {} round-tagged",
                check.spans, check.duration_events, check.tracks, check.round_tagged
            );
            let mut names: Vec<_> = check.names.iter().collect();
            names.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
            for (name, n) in names {
                println!("  {name:<14} {n}");
            }
            Ok(())
        }
        other => Err(format!("unknown flight subcommand '{other}' ({usage})")),
    }
}

fn serve_policy(flags: &Flags) -> Result<fss_sim::PolicyKind, String> {
    Ok(match flags.get("policy").unwrap_or("maxcard") {
        "maxcard" => fss_sim::PolicyKind::MaxCard,
        "minrtime" => fss_sim::PolicyKind::MinRTime,
        "maxweight" => fss_sim::PolicyKind::MaxWeight,
        "fifo" => fss_sim::PolicyKind::FifoGreedy,
        other => return Err(format!("unknown policy '{other}'")),
    })
}

/// Session options for `serve`: the port count and failure plan come
/// from `--scenario` when given (its arrivals are ignored — arrivals
/// come over the wire), overridable/settable via `--ports`.
fn serve_session_options(flags: &Flags) -> Result<flow_switch::serve::ServeOptions, String> {
    let mut opts = flow_switch::serve::ServeOptions {
        policy: serve_policy(flags)?,
        queue_cap: flags.parsed("queue-cap", 1024usize)?,
        admission: flow_switch::serve::AdmissionMode::parse(
            flags.get("admission").unwrap_or("pause"),
        )?,
        cores: flags.parsed("cores", 1usize)?,
        ..flow_switch::serve::ServeOptions::default()
    };
    if opts.queue_cap == 0 {
        return Err("--queue-cap must be at least 1".into());
    }
    if let Some(path) = flags.get("scenario") {
        let spec = fss_sim::ScenarioSpec::load(path).map_err(|e| e.to_string())?;
        opts.ports = spec.ports;
        opts.failures = spec.failures;
    }
    opts.ports = flags.parsed("ports", opts.ports)?;
    // `--flight-trace OUT.json` spools live spans next to the trace and
    // exports the Chrome JSON when the session ends (serve_cmd does the
    // export); `--stall-budget-ms` tunes the watchdog.
    if let Some(out) = flags.get("flight-trace") {
        let mut spool = std::ffi::OsString::from(out);
        spool.push(".spool.jsonl");
        opts.flight_spool = Some(std::path::PathBuf::from(spool));
        if let Some(ms) = flags.get("stall-budget-ms") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad value for --stall-budget-ms: {ms}"))?;
            opts.stall_budget = Some(std::time::Duration::from_millis(ms));
        }
    } else if flags.get("stall-budget-ms").is_some() {
        return Err("--stall-budget-ms requires --flight-trace".into());
    }
    Ok(opts)
}

fn serve_cmd(flags: &Flags) -> Result<(), String> {
    if flags.get("soak").is_some() {
        return serve_soak(flags);
    }
    if flags.get("reference").is_some() {
        return serve_reference(flags);
    }
    if let Some(path) = flags.get("replay") {
        return serve_replay(flags, path);
    }
    let opts = serve_session_options(flags)?;
    let stats = match flags.get("listen") {
        None => flow_switch::serve::serve_stdio(opts)?,
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
            eprintln!(
                "serve: ingest on {}",
                listener.local_addr().map_err(|e| e.to_string())?
            );
            let metrics_listener = match flags.get("metrics-listen") {
                None => None,
                Some(maddr) => {
                    let l = std::net::TcpListener::bind(maddr)
                        .map_err(|e| format!("bind {maddr}: {e}"))?;
                    eprintln!(
                        "serve: metrics on http://{}/metrics",
                        l.local_addr().map_err(|e| e.to_string())?
                    );
                    Some(l)
                }
            };
            flow_switch::serve::run_server_on(listener, metrics_listener, opts)?
        }
    };
    eprintln!(
        "serve: {} arrived, {} admitted, {} dropped, {} dispatched ({} pauses), makespan {}",
        stats.arrived,
        stats.admitted,
        stats.dropped,
        stats.dispatched,
        stats.pauses,
        stats.makespan
    );
    // The session spooled spans while it ran (and finalized the spool on
    // finish); export the Chrome trace now that the engine is down.
    if let Some(out) = flags.get("flight-trace") {
        let mut spool = std::ffi::OsString::from(out);
        spool.push(".spool.jsonl");
        let spool = std::path::PathBuf::from(spool);
        if spool.exists() {
            let parsed = fss_flight::read_spool(&spool)?;
            std::fs::write(out, fss_flight::to_chrome(&parsed))
                .map_err(|e| format!("write {out}: {e}"))?;
            eprintln!(
                "serve: flight trace {out} ({} span(s), {} watchdog dump(s); spool {})",
                parsed.events.len(),
                parsed.watchdogs.len(),
                spool.display()
            );
        } else {
            eprintln!(
                "serve: no spans recorded (no arrival started the engine); {out} not written"
            );
        }
    }
    Ok(())
}

/// `serve --soak`: the built-in soak harness (see `fss_serve::run_soak`).
fn serve_soak(flags: &Flags) -> Result<(), String> {
    let spec = spec_from_flags(flags)?;
    let opts = flow_switch::serve::SoakOptions {
        policy: serve_policy(flags)?,
        queue_cap: flags.parsed("queue-cap", 1024usize)?,
        disconnect_after: match flags.get("disconnect-after") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("bad value for --disconnect-after: {v}"))?,
            ),
        },
        scrape_metrics: true,
        ..flow_switch::serve::SoakOptions::new(spec)
    };
    let started = std::time::Instant::now();
    let report = flow_switch::serve::run_soak(&opts)?;
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "soak: {} flows through the live server in {:.2}s ({:.0} flows/s)",
        report.flows,
        elapsed,
        report.flows as f64 / elapsed.max(1e-9)
    );
    println!(
        "soak: parity OK ({} dispatch lines strict-equal to the reference), zero silent loss \
         (arrived {} = dispatched {} + dropped {})",
        report.dispatch_lines, report.stats.arrived, report.stats.dispatched, report.stats.dropped
    );
    if opts.disconnect_after.is_some() {
        println!(
            "soak: mid-run disconnect/reconnect exercised (detached marker seen: {})",
            report.detached_seen
        );
    }
    if let Some(scrape) = &report.scrape {
        let fss_lines = scrape.lines().filter(|l| l.starts_with("fss_")).count();
        println!("soak: /metrics scrape returned {fss_lines} fss_ series");
    }
    Ok(())
}

/// `serve --reference`: print the single-process reference dispatch
/// stream for the workload, for external strict-diffing against a live
/// serve session fed the same trace.
fn serve_reference(flags: &Flags) -> Result<(), String> {
    let spec = spec_from_flags(flags)?;
    let policy = serve_policy(flags)?;
    let trace = spec.dump_trace().map_err(|e| e.to_string())?;
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut failed = false;
    fss_sim::run_source_telemetry(
        Box::new(fss_sim::TraceSource::new(std::sync::Arc::new(trace))),
        policy,
        spec.failures.as_ref(),
        &mut flow_switch::engine::EngineTelemetry::disabled(),
        |id, release, round| {
            failed |= writeln!(
                out,
                "{}",
                flow_switch::serve::ServeMsg::dispatch(id, release, round).to_line()
            )
            .is_err();
        },
    );
    out.flush().map_err(|e| format!("flush stdout: {e}"))?;
    if failed {
        return Err("write reference stream to stdout".into());
    }
    Ok(())
}

/// `serve --replay FILE --connect ADDR`: play a trace file against a
/// running server, printing every response line to stdout. `--skip N`
/// skips the first N arrivals (reconnect continuation), `--take N`
/// sends at most N, `--finish` ends the session cleanly; without it
/// the client half-closes and drains to the server's Detached marker.
///
/// The trace streams straight from disk line-by-line — replay memory
/// is O(1) in the trace length, so `trace gen` output far larger than
/// RAM pipes through unchanged.
fn serve_replay(flags: &Flags, path: &str) -> Result<(), String> {
    use std::io::BufRead;
    let addr = flags.required("connect")?;
    let skip: usize = flags.parsed("skip", 0usize)?;
    let take: usize = flags.parsed("take", usize::MAX)?;
    let finish = flags.get("finish").is_some();

    let file = std::fs::File::open(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut trace = std::io::BufReader::with_capacity(1 << 18, file);
    let mut line = String::new();

    // The header must lead the trace; require it before connecting so
    // a non-trace file fails fast, without opening a session.
    let header = loop {
        line.clear();
        let n = trace
            .read_line(&mut line)
            .map_err(|e| format!("read {path}: {e}"))?;
        if n == 0 {
            return Err(format!("{path}: no {{\"ports\":N}} header"));
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        match flow_switch::serve::parse_ingest(text)
            .map_err(|e| format!("{path} is not a trace: {e}"))?
        {
            flow_switch::serve::IngestLine::Header { .. } => break text.to_string(),
            other => {
                return Err(format!(
                    "{path}: expected the {{\"ports\":N}} header first, found {other:?}"
                ))
            }
        }
    };

    let conn = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let reader_conn = conn.try_clone().map_err(|e| e.to_string())?;
    let reader = std::thread::spawn(move || {
        use std::io::BufRead;
        let mut reader = std::io::BufReader::new(reader_conn);
        let mut line = String::new();
        let mut n = 0u64;
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) if line.trim().is_empty() => continue,
                Ok(_) => {
                    println!("{}", line.trim());
                    n += 1;
                }
            }
        }
        n
    });
    {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(&conn);
        // The header only opens a session; a reconnect continuation
        // (--skip > 0) must not resend it.
        if skip == 0 {
            writeln!(w, "{header}").map_err(|e| format!("send header: {e}"))?;
        }
        let mut seen = 0usize;
        let mut sent = 0usize;
        while sent < take {
            line.clear();
            let n = trace
                .read_line(&mut line)
                .map_err(|e| format!("read {path}: {e}"))?;
            if n == 0 {
                break;
            }
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            match flow_switch::serve::parse_ingest(text)
                .map_err(|e| format!("{path} is not a trace: {e}"))?
            {
                flow_switch::serve::IngestLine::Arrival { .. } => {
                    seen += 1;
                    if seen > skip {
                        writeln!(w, "{text}").map_err(|e| format!("send arrival: {e}"))?;
                        sent += 1;
                    }
                }
                other => return Err(format!("{path}: unexpected trace line {other:?}")),
            }
        }
        if finish {
            writeln!(w, "{}", flow_switch::serve::ServeMsg::finish().to_line())
                .map_err(|e| format!("send finish: {e}"))?;
        }
        w.flush().map_err(|e| format!("flush: {e}"))?;
    }
    if !finish {
        conn.shutdown(std::net::Shutdown::Write)
            .map_err(|e| format!("half-close: {e}"))?;
    }
    let received = reader.join().map_err(|_| "reader thread panicked")?;
    eprintln!("replay: {received} response line(s) received");
    Ok(())
}
