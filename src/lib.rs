//! # flow-switch — umbrella crate
//!
//! A from-scratch Rust reproduction of *Scheduling Flows on a Switch to
//! Optimize Response Times* (Jahanjou, Rajaraman, Stalfa — SPAA 2020).
//!
//! This crate re-exports the workspace's public surface:
//!
//! * [`core`] — the switch / flow / schedule model and metrics;
//! * [`lp`] — the linear-programming substrate (two-phase simplex);
//! * [`matching`] — bipartite matching, edge coloring, BvN decomposition;
//! * [`rounding`] — dependent rounding engines;
//! * [`offline`] — the paper's offline approximation algorithms
//!   (FS-ART iterative rounding, FS-MRT LP rounding);
//! * [`online`] — online heuristics (MaxCard / MinRTime / MaxWeight) and
//!   the AMRT algorithm, plus the legacy round-by-round runner (kept as
//!   the reference implementation for differential testing);
//! * [`engine`] — the event-driven incremental scheduling engine: a
//!   calendar/event queue that skips idle rounds, an incremental matcher
//!   that maintains the maximum matching across rounds and repairs only
//!   augmenting paths from ports dirtied by arrivals/departures, the
//!   [`engine::FlowSource`] streaming-arrival trait (batch instance
//!   adapter + unbounded Poisson generator), and per-port sharded queue
//!   state. This is the hot path behind every figure and table binary;
//!   its exact mode is round-for-round identical to the legacy runner;
//! * [`sim`] — the flow-level simulator and the paper's experiment
//!   runner (heuristic execution routes through [`engine`]);
//! * [`coflow`] — the co-flow generalization (§6 future work): grouped
//!   flows, CCT-style metrics, SEBF / FIFO / fair schedulers;
//! * [`dist`] — the distributed sharded bench runner: a coordinator
//!   that shards the experiment registry's cell list across
//!   `flowsched bench-worker` processes, checkpoints per-cell results
//!   to `BENCH_cells.jsonl`, and resumes interrupted (paper-scale)
//!   runs;
//! * [`serve`] — the live serving path (`flowsched serve`): JSONL
//!   arrival ingest over a socket or stdin, bounded admission control
//!   with explicit backpressure, a streaming dispatch-decision
//!   response, a Prometheus `/metrics` endpoint, and the soak harness
//!   that strict-diffs live schedules against `run_scenario`;
//! * [`flight`] — the flight recorder: per-thread lock-free span rings
//!   drained into a bounded on-disk spool, a Chrome Trace Format
//!   exporter (load the JSON in Perfetto), and the stall watchdog that
//!   dumps a post-mortem when the round counter stops advancing.
//!   Wired through `--flight-trace` on `stream`/`bench`/`serve` and
//!   the `flowsched flight` subcommands; disabled tracing is
//!   measured-zero overhead and never changes schedules.
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and
//! `flowsched stream` for driving unbounded streaming workloads.

pub use fss_coflow as coflow;
pub use fss_core as core;
pub use fss_dist as dist;
pub use fss_engine as engine;
pub use fss_flight as flight;
pub use fss_lp as lp;
pub use fss_matching as matching;
pub use fss_offline as offline;
pub use fss_online as online;
pub use fss_rounding as rounding;
pub use fss_serve as serve;
pub use fss_sim as sim;
pub use fss_telemetry as telemetry;
pub use fss_trace as trace;

/// One-stop import for examples and integration tests.
pub mod prelude {
    pub use fss_core::prelude::*;
}
